//! Asynchronous in-order command streams.
//!
//! The paper's API (§IV) pays one request/response round trip per call, so
//! a kernel launch through the legacy path costs three round trips and a
//! QR panel step serializes a dozen ~2 µs stalls onto the critical path —
//! exactly the latency-bound region where Fig. 9/10 show remote GPUs
//! losing to a local one at small N. [`AcStream`] removes those stalls:
//! commands (`mem_alloc` / `mem_set` / `mem_cpy_h2d` / fused launch /
//! `mem_free`) are *enqueued* fire-and-forget under a sliding in-flight
//! window, and errors are deferred — latched sticky on the stream and
//! surfaced at [`AcStream::synchronize`] or event waits, like a CUDA
//! stream.
//!
//! Two implementations sit behind the one API:
//!
//! * **Wire mode** — over a bare [`RemoteAccelerator`] (no retry policy,
//!   lossless fabric): queued commands are packed into
//!   [`StreamBatch`] frames — one fabric
//!   message, one cumulative ack for the whole batch — and allocations
//!   return client-minted stream-virtual pointers
//!   ([`MemAllocAt`](crate::proto::Request::MemAllocAt)) so even
//!   `mem_alloc` needs no round trip. Batches ride the ordinary request
//!   tag, so the fabric's non-overtaking guarantee serializes them against
//!   the client's plain requests: a dependent `mem_cpy_d2h` or peer
//!   transfer only needs [`AcStream::flush`] before it, not a full drain.
//! * **Direct mode** — over a local GPU, a retry-framed remote, or a
//!   [`Resilient`](AcDevice::Resilient) failover session: commands are
//!   deferred in a host-side queue and executed one at a time at flush
//!   points through the underlying device. This keeps the retry plane's
//!   op-id dedupe and the failover command log correct — a replay after an
//!   accelerator death reproduces exactly the stream's submission order.
//!
//! In both modes the observable semantics are the same: commands execute
//! in submission order, completion is only guaranteed after a successful
//! `synchronize`, and the first failure sticks to the stream.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use dacc_fabric::payload::Payload;
use dacc_sim::time::SimTime;
use dacc_vgpu::kernel::{KernelArg, LaunchConfig};
use dacc_vgpu::memory::DevicePtr;

use crate::api::{AcDevice, AcError, RemoteAccelerator};
use crate::proto::{ac_tags, Request, Status, StreamAck, StreamBatch, STREAM_VIRT_BASE};

/// Command-stream tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Maximum commands submitted but not yet acknowledged (wire mode) or
    /// deferred but not yet executed (direct mode). Enqueueing past the
    /// window blocks until credits return — the sliding-window flow
    /// control that bounds daemon-side queueing.
    pub window: usize,
    /// Maximum commands packed into one batch frame; a full pending queue
    /// is flushed eagerly.
    pub max_batch: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            window: 64,
            max_batch: 16,
        }
    }
}

/// A recorded point in a stream's command sequence (see
/// [`AcStream::record_event`]).
#[derive(Clone, Copy, Debug)]
pub struct StreamEvent {
    /// Number of commands enqueued on the stream before the event.
    seq: u64,
}

/// Stream-virtual allocations are aligned like real ones.
const VIRT_ALIGN: u64 = 256;
/// Address space reserved per stream, so streams sharing one daemon
/// session never mint overlapping regions.
const VIRT_STRIDE: u64 = 1 << 34;

/// An asynchronous, in-order command stream onto one accelerator.
///
/// Clones share state (like the underlying device handles); a stream is a
/// single logical command queue and is not meant to be driven from
/// concurrent tasks.
#[derive(Clone)]
pub struct AcStream {
    imp: Imp,
}

#[derive(Clone)]
enum Imp {
    Wire(Rc<Wire>),
    Direct(Rc<Direct>),
}

impl AcStream {
    /// Open a stream onto `dev`. Bare remote accelerators (no retry
    /// policy) get wire batching; everything else gets the order-preserving
    /// direct queue.
    pub fn new(dev: &AcDevice, cfg: StreamConfig) -> Self {
        match dev {
            AcDevice::Remote(r) if r.config().retry.is_none() => AcStream {
                imp: Imp::Wire(Rc::new(Wire::new(r.clone(), cfg))),
            },
            _ => AcStream {
                imp: Imp::Direct(Rc::new(Direct {
                    dev: dev.clone(),
                    cfg,
                    st: RefCell::new(DirectState::default()),
                })),
            },
        }
    }

    /// True when this stream batches commands on the wire (bare remote
    /// fast path) rather than deferring them host-side.
    pub fn is_wire(&self) -> bool {
        matches!(self.imp, Imp::Wire(_))
    }

    /// Enqueue an allocation of `len` bytes; the returned pointer is
    /// usable immediately in later commands (and in plain requests from
    /// the same front-end after a [`flush`](Self::flush)).
    ///
    /// Wire streams mint a stream-virtual pointer (≥
    /// [`STREAM_VIRT_BASE`]) that the daemon translates on every use;
    /// direct streams execute the deferred queue and allocate eagerly, so
    /// the call blocks but ordering is preserved.
    pub async fn mem_alloc(&self, len: u64) -> Result<DevicePtr, AcError> {
        match &self.imp {
            Imp::Wire(w) => {
                let virt = {
                    let mut st = w.st.borrow_mut();
                    let v = st.next_virt;
                    st.next_virt += (len.max(1) + VIRT_ALIGN - 1) & !(VIRT_ALIGN - 1);
                    v
                };
                w.enqueue(Request::MemAllocAt { virt, len }, None).await?;
                Ok(DevicePtr(virt))
            }
            Imp::Direct(d) => {
                d.drain().await;
                d.sticky()?;
                d.dev.mem_alloc(len).await
            }
        }
    }

    /// Enqueue a free of `ptr` (a base pointer from
    /// [`mem_alloc`](Self::mem_alloc)).
    pub async fn mem_free(&self, ptr: DevicePtr) -> Result<(), AcError> {
        match &self.imp {
            Imp::Wire(w) => w.enqueue(Request::MemFree { ptr }, None).await,
            Imp::Direct(d) => d.enqueue(DirectOp::Free(ptr)).await,
        }
    }

    /// Enqueue a fill of `len` device bytes at `ptr` with `byte`.
    pub async fn mem_set(&self, ptr: DevicePtr, len: u64, byte: u8) -> Result<(), AcError> {
        match &self.imp {
            Imp::Wire(w) => w.enqueue(Request::MemSet { ptr, len, byte }, None).await,
            Imp::Direct(d) => d.enqueue(DirectOp::Set(ptr, len, byte)).await,
        }
    }

    /// Enqueue a host→device copy of `src` to `dst`.
    pub async fn mem_cpy_h2d(&self, src: &Payload, dst: DevicePtr) -> Result<(), AcError> {
        match &self.imp {
            Imp::Wire(w) => {
                let protocol = w.accel.config().h2d.wire(src.len());
                w.enqueue(
                    Request::MemCpyH2D {
                        dst,
                        len: src.len(),
                        protocol,
                    },
                    Some(src.clone()),
                )
                .await
            }
            Imp::Direct(d) => d.enqueue(DirectOp::H2D(src.clone(), dst)).await,
        }
    }

    /// Enqueue a fused kernel launch.
    pub async fn launch(
        &self,
        name: &str,
        cfg: LaunchConfig,
        args: &[KernelArg],
    ) -> Result<(), AcError> {
        match &self.imp {
            Imp::Wire(w) => {
                w.enqueue(
                    Request::Launch {
                        name: name.to_owned(),
                        args: args.to_vec(),
                        grid: cfg.grid,
                        block: cfg.block,
                    },
                    None,
                )
                .await
            }
            Imp::Direct(d) => {
                d.enqueue(DirectOp::Launch(name.to_owned(), cfg, args.to_vec()))
                    .await
            }
        }
    }

    /// Record the stream's current position; [`wait_event`](Self::wait_event)
    /// on the returned event completes once every command enqueued before
    /// this point has executed.
    pub fn record_event(&self) -> StreamEvent {
        let seq = match &self.imp {
            Imp::Wire(w) => w.st.borrow().enqueued,
            Imp::Direct(d) => d.st.borrow().enqueued,
        };
        StreamEvent { seq }
    }

    /// Wait until every command enqueued before `event` was recorded has
    /// executed, surfacing the stream's sticky error if any command so far
    /// has failed.
    pub async fn wait_event(&self, event: StreamEvent) -> Result<(), AcError> {
        match &self.imp {
            Imp::Wire(w) => {
                w.send_batch().await;
                while w.st.borrow().acked < event.seq {
                    w.await_ack().await;
                }
                w.sticky()
            }
            Imp::Direct(d) => {
                if d.st.borrow().completed < event.seq {
                    d.drain().await;
                }
                d.sticky()
            }
        }
    }

    /// Submit everything queued so far without waiting for completion.
    ///
    /// After a flush, plain requests from the same front-end (e.g.
    /// `mem_cpy_d2h`, peer transfers) are ordered after the stream's
    /// commands: wire batches share the request tag's non-overtaking
    /// order, and direct streams have already executed the queue.
    pub async fn flush(&self) -> Result<(), AcError> {
        match &self.imp {
            Imp::Wire(w) => {
                w.sticky()?;
                w.accel.telemetry().count("stream.flushes", 1);
                w.send_batch().await;
                Ok(())
            }
            Imp::Direct(d) => {
                d.drain().await;
                d.sticky()
            }
        }
    }

    /// Drain the stream: submit everything, wait for all acks, and surface
    /// the sticky error (the first failure among all commands so far).
    /// The error stays latched — a failed stream keeps failing.
    pub async fn synchronize(&self) -> Result<(), AcError> {
        match &self.imp {
            Imp::Wire(w) => {
                w.send_batch().await;
                while !w.st.borrow().inflight.is_empty() {
                    w.await_ack().await;
                }
                w.sticky()
            }
            Imp::Direct(d) => {
                d.drain().await;
                d.sticky()
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Wire mode
// ---------------------------------------------------------------------------

struct Wire {
    accel: RemoteAccelerator,
    id: u32,
    cfg: StreamConfig,
    st: RefCell<WireState>,
}

struct WireState {
    /// Commands queued but not yet packed into a batch.
    pending: Vec<Request>,
    /// H2D payloads for pending copies, in command order.
    pending_data: Vec<Payload>,
    /// Unacked batches: (last sequence number, command count, submit time).
    inflight: VecDeque<(u64, u32, SimTime)>,
    /// Commands ever enqueued (== next sequence number to assign).
    enqueued: u64,
    /// Commands sent in batches (== next batch's `first_seq`).
    sent: u64,
    /// Commands covered by received acks.
    acked: u64,
    /// Next stream-virtual address to mint.
    next_virt: u64,
    /// First deferred failure; latched until the stream is dropped.
    sticky: Option<AcError>,
}

impl Wire {
    fn new(accel: RemoteAccelerator, cfg: StreamConfig) -> Self {
        let id = accel.alloc_op() as u32 & 0x0FFF_FFFF;
        let st = WireState {
            pending: Vec::new(),
            pending_data: Vec::new(),
            inflight: VecDeque::new(),
            enqueued: 0,
            sent: 0,
            acked: 0,
            next_virt: STREAM_VIRT_BASE + id as u64 * VIRT_STRIDE,
            sticky: None,
        };
        Wire {
            accel,
            id,
            cfg,
            st: RefCell::new(st),
        }
    }

    fn sticky(&self) -> Result<(), AcError> {
        match &self.st.borrow().sticky {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    async fn enqueue(&self, req: Request, data: Option<Payload>) -> Result<(), AcError> {
        debug_assert!(req.batchable());
        // Fail fast once the stream has a latched error; the caller will
        // see the full picture at `synchronize`.
        self.sticky()?;
        // Window flow control: credits cover pending + unacked commands.
        loop {
            let (outstanding, have_inflight, have_pending) = {
                let st = self.st.borrow();
                (
                    (st.enqueued - st.acked) as usize,
                    !st.inflight.is_empty(),
                    !st.pending.is_empty(),
                )
            };
            if outstanding < self.cfg.window.max(1) {
                break;
            }
            if have_inflight {
                self.await_ack().await;
            } else if have_pending {
                self.send_batch().await;
            } else {
                break;
            }
        }
        {
            let mut st = self.st.borrow_mut();
            if let Some(p) = data {
                st.pending_data.push(p);
            }
            st.pending.push(req);
            st.enqueued += 1;
        }
        self.accel.telemetry().count("stream.cmds", 1);
        if self.st.borrow().pending.len() >= self.cfg.max_batch.max(1) {
            self.send_batch().await;
        }
        Ok(())
    }

    /// Pack the pending queue into one batch frame and put it on the wire,
    /// followed by the data blocks of any queued H2D copies (same order,
    /// stream data tag).
    async fn send_batch(&self) {
        let handle = self.accel.ep.fabric().handle().clone();
        let (frame, data) = {
            let mut st = self.st.borrow_mut();
            if st.pending.is_empty() {
                return;
            }
            let cmds = std::mem::take(&mut st.pending);
            let data = std::mem::take(&mut st.pending_data);
            let n = cmds.len() as u64;
            let batch = StreamBatch {
                stream: self.id,
                first_seq: st.sent,
                epoch: self.accel.epoch,
                cmds,
            };
            let last_seq = st.sent + n - 1;
            st.inflight.push_back((last_seq, n as u32, handle.now()));
            st.sent += n;
            (batch, data)
        };
        let id = self.id;
        let ncmds = frame.cmds.len();
        self.accel.trace("stream.batch", || {
            format!("stream {id}: {ncmds} cmds from seq {}", frame.first_seq)
        });
        let tele = self.accel.telemetry();
        tele.count("stream.batches", 1);
        let data_bytes: u64 = data.iter().map(|p| p.len()).sum();
        let _submit_span = tele
            .span(&handle, "stream.submit", || {
                format!("stream {id}: {ncmds} cmds from seq {}", frame.first_seq)
            })
            .bytes(data_bytes)
            .op(frame.first_seq);
        let bytes = frame.encode_into(&mut self.accel.enc.borrow_mut());
        self.accel
            .telemetry()
            .count("wire.encode_bytes", bytes.len() as u64);
        self.accel
            .ep
            .send(
                self.accel.daemon,
                ac_tags::REQUEST,
                Payload::from_bytes(bytes),
            )
            .await;
        let dtag = ac_tags::stream_data_tag(self.id);
        for payload in data {
            let len = payload.len();
            let block = self.accel.config().h2d.wire(len).block_size(len);
            let mut offset = 0u64;
            while offset < len {
                let bs = block.min(len - offset);
                self.accel
                    .ep
                    .send(
                        self.accel.daemon,
                        dtag,
                        self.accel.seal_counted(&payload.slice(offset, bs)),
                    )
                    .await;
                offset += bs;
            }
        }
    }

    /// Receive one cumulative ack, returning its credits to the window and
    /// latching the batch's first error (if any) as the sticky error.
    async fn await_ack(&self) {
        let (last_seq, n, submitted) = {
            let mut st = self.st.borrow_mut();
            st.inflight.pop_front().expect("no in-flight batch to ack")
        };
        let env = self
            .accel
            .ep
            .recv(
                Some(self.accel.daemon),
                Some(ac_tags::stream_ack_tag(self.id)),
            )
            .await;
        let tele = self.accel.telemetry();
        let id = self.id;
        tele.span_at(
            "stream.ack_window",
            || format!("stream {id}: batch through seq {last_seq} ({n} cmds)"),
            submitted,
            self.accel.ep.fabric().handle().now(),
            None,
            Some(last_seq),
        );
        tele.count("stream.acks", 1);
        let mut st = self.st.borrow_mut();
        st.acked += n as u64;
        match env.payload.bytes().and_then(|b| StreamAck::decode(b).ok()) {
            None => {
                if st.sticky.is_none() {
                    st.sticky = Some(AcError::Protocol);
                }
            }
            Some(ack) if ack.seq != last_seq => {
                if st.sticky.is_none() {
                    st.sticky = Some(AcError::Protocol);
                }
            }
            Some(ack) => {
                if ack.status != Status::Ok && st.sticky.is_none() {
                    st.sticky = Some(AcError::Remote(ack.status));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Direct mode
// ---------------------------------------------------------------------------

struct Direct {
    dev: AcDevice,
    cfg: StreamConfig,
    st: RefCell<DirectState>,
}

#[derive(Default)]
struct DirectState {
    queue: VecDeque<DirectOp>,
    enqueued: u64,
    completed: u64,
    sticky: Option<AcError>,
}

enum DirectOp {
    Free(DevicePtr),
    Set(DevicePtr, u64, u8),
    H2D(Payload, DevicePtr),
    Launch(String, LaunchConfig, Vec<KernelArg>),
}

impl Direct {
    fn sticky(&self) -> Result<(), AcError> {
        match &self.st.borrow().sticky {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    async fn enqueue(&self, op: DirectOp) -> Result<(), AcError> {
        self.sticky()?;
        let depth = {
            let mut st = self.st.borrow_mut();
            st.queue.push_back(op);
            st.enqueued += 1;
            st.queue.len()
        };
        // Bound deferral: past the window, execute before returning.
        if depth >= self.cfg.window.max(1) {
            self.drain().await;
        }
        Ok(())
    }

    /// Execute the deferred queue strictly in submission order through the
    /// underlying device. Over a `Resilient` session this is what keeps
    /// the failover command log identical to the stream order — a replay
    /// after an accelerator death reproduces the submission sequence.
    async fn drain(&self) {
        loop {
            let op = {
                let mut st = self.st.borrow_mut();
                if st.sticky.is_some() {
                    // A failed stream stops executing; drop what's queued
                    // (it would have observed the failed state anyway).
                    let dropped = st.queue.len() as u64;
                    st.queue.clear();
                    st.completed += dropped;
                    return;
                }
                match st.queue.pop_front() {
                    Some(op) => op,
                    None => return,
                }
            };
            let result = match &op {
                DirectOp::Free(ptr) => self.dev.mem_free(*ptr).await,
                DirectOp::Set(ptr, len, byte) => self.dev.mem_set(*ptr, *len, *byte).await,
                DirectOp::H2D(payload, dst) => self.dev.mem_cpy_h2d(payload, *dst).await,
                DirectOp::Launch(name, cfg, args) => self.dev.launch(name, *cfg, args).await,
            };
            let mut st = self.st.borrow_mut();
            st.completed += 1;
            if let Err(e) = result {
                if st.sticky.is_none() {
                    st.sticky = Some(e);
                }
            }
        }
    }
}

impl AcDevice {
    /// Open an asynchronous command stream onto this device (see
    /// [`AcStream`]).
    pub fn stream(&self, cfg: StreamConfig) -> AcStream {
        AcStream::new(self, cfg)
    }
}
