//! The middleware wire protocol.
//!
//! §IV: "each request involves two MPI messages. First, the front-end sends
//! a request message to the back-end. Second, the back-end sends the results
//! (e.g., error code or data) back to the front-end." Bulk payloads ride as
//! separate data messages between the request and the response — one for
//! the naive protocol, one per block for the pipeline protocol.
//!
//! **Integrity**: every framed header ([`RequestFrame`], [`StreamBatch`],
//! [`Response`], [`StreamAck`]) and every bulk data block carries a CRC32
//! trailer ([`seal_block`] / [`open_block`]). A mismatch is surfaced as
//! [`DecodeError`] (headers) or [`Status::Corrupt`] (blocks) and treated
//! exactly like a lost message: the retry plane retransmits, so a bit
//! flipped in flight can never be silently executed or returned as data.

use bytes::{Bytes, BytesMut};
use dacc_fabric::codec::EncodeBuf;
use dacc_fabric::payload::Payload;
use dacc_vgpu::kernel::KernelArg;
use dacc_vgpu::memory::DevicePtr;

/// Reserved fabric tags for middleware traffic.
pub mod ac_tags {
    use dacc_fabric::mpi::Tag;
    /// Front-end → daemon request headers.
    pub const REQUEST: Tag = Tag(0xFFFF_0020);
    /// Daemon → front-end response headers.
    pub const RESPONSE: Tag = Tag(0xFFFF_0021);
    /// Bulk data blocks (either direction).
    pub const DATA: Tag = Tag(0xFFFF_0022);
    /// Accelerator-to-accelerator data blocks.
    pub const PEER_DATA: Tag = Tag(0xFFFF_0023);
    /// Coalesced control traffic: one [`ControlBatch`](super::ControlBatch)
    /// frame carrying several small daemon → front-end messages (responses,
    /// stream acks) for the same peer. The fabric's unbundler splits it back
    /// into per-entry tags on arrival, so receivers never see this tag.
    pub const CTRL: Tag = Tag(0xFFFF_0024);

    /// Response tag scoped to one `(op_id, attempt)` of a framed request.
    ///
    /// Retried requests listen on a fresh tag per attempt so a late
    /// response from an abandoned attempt can never be mistaken for the
    /// current one — it rots in the unexpected queue instead (a bounded
    /// leak the simulation tolerates). Response tags live in
    /// `0x4000_0000..0x8000_0000` and data tags in
    /// `0x8000_0000..0xC000_0000`, disjoint from each other, from the
    /// reserved `0xFFFF_00xx` tags, and from ordinary application tags
    /// (which stay small). The 30-bit scramble can alias two operations
    /// only if a stale message additionally survives with the same source
    /// rank, which bounded-retry clients never produce.
    pub fn response_tag(op_id: u64, attempt: u32) -> Tag {
        Tag(0x4000_0000 | scramble(op_id, attempt))
    }

    /// Data-block tag scoped to one `(op_id, attempt)` of a framed request.
    pub fn data_tag(op_id: u64, attempt: u32) -> Tag {
        Tag(0x8000_0000 | scramble(op_id, attempt))
    }

    /// Cumulative-ack tag for one command stream (see
    /// [`StreamBatch`](super::StreamBatch)). Stream ack tags live in
    /// `0xC000_0000..0xD000_0000`, disjoint from the response and data
    /// scramble ranges above.
    pub fn stream_ack_tag(stream: u32) -> Tag {
        Tag(0xC000_0000 | (stream & 0x0FFF_FFFF))
    }

    /// Bulk-data tag for host→device copies enqueued on one command
    /// stream. Stream data tags live in `0xD000_0000..0xE000_0000`.
    pub fn stream_data_tag(stream: u32) -> Tag {
        Tag(0xD000_0000 | (stream & 0x0FFF_FFFF))
    }

    fn scramble(op_id: u64, attempt: u32) -> u32 {
        let mix = (op_id ^ ((attempt as u64) << 40).wrapping_add(attempt as u64))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((mix >> 34) as u32) & 0x3FFF_FFFF
    }
}

/// Base of the client-minted stream-virtual device address space used by
/// [`MemAllocAt`](Request::MemAllocAt): a streamed allocation must return a
/// pointer before the daemon's ack arrives, so the front-end mints one from
/// this range and the daemon translates on use. Far above both physical
/// device addresses and the failover plane's session-virtual range
/// (`1 << 48`), so a pointer crossing planes fails fast.
pub const STREAM_VIRT_BASE: u64 = 1 << 52;

/// Transfer protocol selector carried in copy requests.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireProtocol {
    /// Single bulk message, fully received before one DMA.
    Naive,
    /// Split into blocks of the given size; network and DMA overlap.
    Pipeline {
        /// Block size in bytes.
        block: u64,
    },
}

impl WireProtocol {
    /// Block size used on the wire (`len` itself for naive).
    pub fn block_size(&self, len: u64) -> u64 {
        match self {
            WireProtocol::Naive => len.max(1),
            WireProtocol::Pipeline { block } => (*block).min(len.max(1)),
        }
    }

    /// Number of data messages for a `len`-byte transfer.
    pub fn block_count(&self, len: u64) -> u64 {
        if len == 0 {
            0
        } else {
            len.div_ceil(self.block_size(len))
        }
    }
}

/// A front-end → daemon request.
#[derive(Clone, PartialEq, Debug)]
pub enum Request {
    /// `acMemAlloc`: allocate `len` bytes of device memory.
    MemAlloc {
        /// Allocation size in bytes.
        len: u64,
    },
    /// `acMemFree`: free a device allocation.
    MemFree {
        /// Base pointer to free.
        ptr: DevicePtr,
    },
    /// `acMemCpy` host→device: data messages follow this header.
    MemCpyH2D {
        /// Destination device pointer.
        dst: DevicePtr,
        /// Transfer length in bytes.
        len: u64,
        /// Protocol for the data messages.
        protocol: WireProtocol,
    },
    /// `acMemCpy` device→host: daemon streams data messages, then responds.
    MemCpyD2H {
        /// Source device pointer.
        src: DevicePtr,
        /// Transfer length in bytes.
        len: u64,
        /// Protocol for the data messages.
        protocol: WireProtocol,
    },
    /// `acKernelCreate`: bind the session to a named kernel.
    KernelCreate {
        /// Registered kernel name.
        name: String,
    },
    /// `acKernelSetArgs`: set the bound kernel's arguments.
    KernelSetArgs {
        /// Argument list.
        args: Vec<KernelArg>,
    },
    /// `acKernelRun`: launch the bound kernel with this configuration.
    KernelRun {
        /// Grid dimensions.
        grid: (u32, u32, u32),
        /// Block dimensions.
        block: (u32, u32, u32),
    },
    /// Stream device data directly to a peer accelerator's daemon
    /// (the paper's accelerator-to-accelerator exchange, §III-C).
    PeerSend {
        /// Source device pointer on this accelerator.
        src: DevicePtr,
        /// Bytes to stream.
        len: u64,
        /// Fabric rank of the receiving daemon.
        peer: u32,
        /// Pipeline block size.
        block: u64,
    },
    /// Receive device data streamed by a peer accelerator's daemon.
    PeerRecv {
        /// Destination device pointer on this accelerator.
        dst: DevicePtr,
        /// Bytes expected.
        len: u64,
        /// Fabric rank of the sending daemon.
        from: u32,
        /// Pipeline block size.
        block: u64,
    },
    /// `acMemSet`: fill `len` device bytes with `byte` (cuMemsetD8).
    MemSet {
        /// Destination device pointer.
        ptr: DevicePtr,
        /// Fill length in bytes.
        len: u64,
        /// Fill value.
        byte: u8,
    },
    /// Liveness probe: the daemon answers immediately.
    Ping,
    /// Stop the daemon (orderly tear-down).
    Shutdown,
    /// Fused `acKernelCreate` + `acKernelSetArgs` + `acKernelRun`: one
    /// round trip instead of three (§IV pays a full request/response pair
    /// per call, which dominates small-kernel latency).
    Launch {
        /// Registered kernel name.
        name: String,
        /// Argument list.
        args: Vec<KernelArg>,
        /// Grid dimensions.
        grid: (u32, u32, u32),
        /// Block dimensions.
        block: (u32, u32, u32),
    },
    /// `acMemAlloc` at a client-minted stream-virtual address (≥
    /// [`STREAM_VIRT_BASE`]): lets a command stream hand out pointers
    /// without waiting for the daemon's ack. The daemon records the
    /// `virt → real` mapping in the client's session and translates on
    /// every later use from that client.
    MemAllocAt {
        /// Stream-virtual base address chosen by the client.
        virt: u64,
        /// Allocation size in bytes.
        len: u64,
    },
    /// Checkpoint read-out: the daemon streams the live contents of each
    /// listed region back to the front-end over the pipelined block
    /// protocol (like a multi-region `MemCpyD2H`), letting a resilient
    /// session capture device state in one round trip.
    Snapshot {
        /// `(ptr, len)` of each live device region, in session order.
        regions: Vec<(u64, u64)>,
        /// Pipeline block size for the data phase.
        block: u64,
    },
    /// Checkpoint restore: the front-end streams each listed region's
    /// contents to the daemon (like a multi-region `MemCpyH2D`), restoring
    /// a previously captured snapshot onto a replacement accelerator.
    Restore {
        /// `(ptr, len)` of each destination region, in session order.
        regions: Vec<(u64, u64)>,
        /// Pipeline block size for the data phase.
        block: u64,
    },
}

/// Status codes carried in responses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// Success.
    Ok,
    /// Device out of memory.
    OutOfMemory,
    /// Invalid device pointer.
    InvalidPointer,
    /// Access out of bounds.
    OutOfBounds,
    /// Kernel name not registered.
    UnknownKernel,
    /// Kernel argument mismatch.
    BadArgs,
    /// Kernel body failed.
    KernelFailed,
    /// No kernel bound to the session (`acKernelRun` before `acKernelCreate`).
    NoKernelBound,
    /// Malformed request.
    Malformed,
    /// The daemon gave up waiting for the request's data phase (lost
    /// blocks); the front-end should retry the whole operation.
    Timeout,
    /// The request was stamped with an assignment epoch older than the
    /// daemon's fence: the accelerator has been reclaimed and possibly
    /// reassigned since the sender's grant, so the op is rejected
    /// deterministically without touching device state.
    StaleEpoch,
    /// A data block failed its CRC32 integrity check. The payload was
    /// discarded without touching device state; the front-end retries the
    /// whole operation like a timeout.
    Corrupt,
}

impl Status {
    fn to_u8(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::OutOfMemory => 1,
            Status::InvalidPointer => 2,
            Status::OutOfBounds => 3,
            Status::UnknownKernel => 4,
            Status::BadArgs => 5,
            Status::KernelFailed => 6,
            Status::NoKernelBound => 7,
            Status::Malformed => 8,
            Status::Timeout => 9,
            Status::StaleEpoch => 10,
            Status::Corrupt => 11,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => Status::Ok,
            1 => Status::OutOfMemory,
            2 => Status::InvalidPointer,
            3 => Status::OutOfBounds,
            4 => Status::UnknownKernel,
            5 => Status::BadArgs,
            6 => Status::KernelFailed,
            7 => Status::NoKernelBound,
            8 => Status::Malformed,
            9 => Status::Timeout,
            10 => Status::StaleEpoch,
            11 => Status::Corrupt,
            _ => return None,
        })
    }
}

/// A daemon → front-end response: status plus one optional word
/// (the allocated pointer for `MemAlloc`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Response {
    /// Outcome of the request.
    pub status: Status,
    /// Request-specific value (e.g. allocated pointer address).
    pub value: u64,
}

impl Response {
    /// A success response with no value.
    pub fn ok() -> Self {
        Response {
            status: Status::Ok,
            value: 0,
        }
    }

    /// An error response.
    pub fn err(status: Status) -> Self {
        Response { status, value: 0 }
    }
}

/// Codec failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError;

/// Bytes added to every sealed header and data block by the CRC trailer.
pub const CRC_TRAILER_BYTES: u64 = 4;

/// Slice-by-8 lookup tables for CRC-32 (IEEE 802.3, reflected polynomial
/// 0xEDB88320). `CRC_TABLES[0]` is the classic byte-at-a-time table;
/// `CRC_TABLES[k]` advances a byte through `k` additional zero bytes, which
/// lets [`Crc32::update`] fold eight input bytes per iteration.
const CRC_TABLES: [[u32; 256]; 8] = generate_crc_tables();

const fn generate_crc_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                (c >> 1) ^ 0xEDB8_8320
            } else {
                c >> 1
            };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

/// Incremental CRC-32 state (IEEE 802.3, reflected polynomial 0xEDB88320),
/// implemented locally to keep the workspace dependency-free. Table-driven
/// slice-by-8: since PR 5 every bulk data block is sealed with a CRC
/// trailer, so the checksum runs over every transferred byte — it has to
/// keep up with the pipelined copy path, not just a few headers. The
/// streaming state lets scatter-gathered payloads ([`Payload`] segment
/// chains) be checksummed segment by segment without reassembly.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state (all-ones preset, per the standard).
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Fold `bytes` into the running checksum.
    pub fn update(&mut self, mut bytes: &[u8]) {
        let mut crc = self.state;
        while bytes.len() >= 8 {
            let lo = crc ^ u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
            let hi = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
            crc = CRC_TABLES[7][(lo & 0xFF) as usize]
                ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[4][(lo >> 24) as usize]
                ^ CRC_TABLES[3][(hi & 0xFF) as usize]
                ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[0][(hi >> 24) as usize];
            bytes = &bytes[8..];
        }
        for &b in bytes {
            crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finish and return the checksum.
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 over a contiguous buffer.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finalize()
}

/// Checksum the frame built so far in `buf`, append the trailer, and split
/// the sealed frame off the arena.
fn seal_take(buf: &mut EncodeBuf) -> Bytes {
    let b = buf.buf();
    let crc = crc32(b);
    b.extend_from_slice(&crc.to_le_bytes());
    buf.take()
}

/// Verify and strip a CRC32 trailer, returning the covered body.
fn unseal(buf: &[u8]) -> Result<&[u8], DecodeError> {
    if buf.len() < CRC_TRAILER_BYTES as usize {
        return Err(DecodeError);
    }
    let (body, trailer) = buf.split_at(buf.len() - CRC_TRAILER_BYTES as usize);
    if crc32(body).to_le_bytes() == trailer {
        Ok(body)
    } else {
        Err(DecodeError)
    }
}

/// Seal one bulk data block for the wire: functional payloads get a CRC32
/// trailer appended **as an extra chained segment** — the body bytes are
/// shared, never copied — while size-only payloads just grow by the trailer
/// size so both modes see identical wire timing.
pub fn seal_block(p: &Payload) -> Payload {
    if !p.is_functional() {
        return Payload::size_only(p.len() + CRC_TRAILER_BYTES);
    }
    let mut crc = Crc32::new();
    let mut segs = Vec::with_capacity(p.segments().len() + 1);
    for s in p.segments() {
        crc.update(s);
        segs.push(s.clone());
    }
    segs.push(Bytes::copy_from_slice(&crc.finalize().to_le_bytes()));
    Payload::chain(segs)
}

/// Verify and strip the trailer of a sealed data block in one pass: the
/// checksum runs incrementally over the body portion of each segment while
/// the trailer bytes are collected, and on a match the verified body is
/// returned directly as a zero-copy slice (no intermediate reassembly). A
/// CRC mismatch — or a block too short to carry a trailer — is `Err`.
/// Size-only blocks carry no bits to check and always verify.
pub fn open_block(p: &Payload) -> Result<Payload, DecodeError> {
    if p.len() < CRC_TRAILER_BYTES {
        return Err(DecodeError);
    }
    if !p.is_functional() {
        return Ok(Payload::size_only(p.len() - CRC_TRAILER_BYTES));
    }
    let body_len = (p.len() - CRC_TRAILER_BYTES) as usize;
    let mut crc = Crc32::new();
    let mut trailer = [0u8; CRC_TRAILER_BYTES as usize];
    let mut off = 0usize;
    for s in p.segments() {
        if off < body_len {
            let take = s.len().min(body_len - off);
            crc.update(&s[..take]);
            if take < s.len() {
                trailer[..s.len() - take].copy_from_slice(&s[take..]);
            }
        } else {
            let t_off = off - body_len;
            trailer[t_off..t_off + s.len()].copy_from_slice(s);
        }
        off += s.len();
    }
    if crc.finalize().to_le_bytes() != trailer {
        return Err(DecodeError);
    }
    Ok(p.slice(0, body_len as u64))
}

/// Wire writer over an [`EncodeBuf`]'s arena: appends to pooled storage
/// instead of a fresh `Vec` per message. `patch_u32` backfills length
/// prefixes so nested bodies (batched commands) encode in place rather
/// than through an intermediate allocation.
struct W<'a>(&'a mut BytesMut);
impl W<'_> {
    fn u8(&mut self, v: u8) {
        self.0.put_u8(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.0.extend_from_slice(v);
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn patch_u32(&mut self, pos: usize, v: u32) {
        self.0[pos..pos + 4].copy_from_slice(&v.to_le_bytes());
    }
}

struct R<'a>(&'a [u8], usize);
impl<'a> R<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let v = *self.0.get(self.1).ok_or(DecodeError)?;
        self.1 += 1;
        Ok(v)
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        let s = self.0.get(self.1..self.1 + 4).ok_or(DecodeError)?;
        self.1 += 4;
        Ok(u32::from_le_bytes(s.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        let s = self.0.get(self.1..self.1 + 8).ok_or(DecodeError)?;
        self.1 += 8;
        Ok(u64::from_le_bytes(s.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let n = self.u32()? as usize;
        let s = self.0.get(self.1..self.1 + n).ok_or(DecodeError)?;
        self.1 += n;
        Ok(s)
    }
    fn finish(&self) -> Result<(), DecodeError> {
        if self.1 == self.0.len() {
            Ok(())
        } else {
            Err(DecodeError)
        }
    }
}

fn encode_protocol(w: &mut W<'_>, p: &WireProtocol) {
    match p {
        WireProtocol::Naive => {
            w.u8(0);
            w.u64(0);
        }
        WireProtocol::Pipeline { block } => {
            w.u8(1);
            w.u64(*block);
        }
    }
}

fn decode_protocol(r: &mut R) -> Result<WireProtocol, DecodeError> {
    let kind = r.u8()?;
    let block = r.u64()?;
    match kind {
        0 => Ok(WireProtocol::Naive),
        1 if block > 0 => Ok(WireProtocol::Pipeline { block }),
        _ => Err(DecodeError),
    }
}

fn encode_arg(w: &mut W<'_>, a: &KernelArg) {
    match a {
        KernelArg::Ptr(p) => {
            w.u8(0);
            w.u64(p.0);
        }
        KernelArg::U64(v) => {
            w.u8(1);
            w.u64(*v);
        }
        KernelArg::I64(v) => {
            w.u8(2);
            w.u64(*v as u64);
        }
        KernelArg::F64(v) => {
            w.u8(3);
            w.f64(*v);
        }
    }
}

fn encode_regions(w: &mut W<'_>, regions: &[(u64, u64)], block: u64) {
    w.u32(regions.len() as u32);
    for (ptr, len) in regions {
        w.u64(*ptr);
        w.u64(*len);
    }
    w.u64(block);
}

fn decode_regions(r: &mut R) -> Result<(Vec<(u64, u64)>, u64), DecodeError> {
    let n = r.u32()?;
    let mut regions = Vec::with_capacity(n as usize);
    for _ in 0..n {
        regions.push((r.u64()?, r.u64()?));
    }
    let block = r.u64()?;
    if block == 0 {
        return Err(DecodeError);
    }
    Ok((regions, block))
}

fn decode_arg(r: &mut R) -> Result<KernelArg, DecodeError> {
    Ok(match r.u8()? {
        0 => KernelArg::Ptr(DevicePtr(r.u64()?)),
        1 => KernelArg::U64(r.u64()?),
        2 => KernelArg::I64(r.u64()? as i64),
        3 => KernelArg::F64(r.f64()?),
        _ => return Err(DecodeError),
    })
}

/// Decode a u32-length-prefixed UTF-8 string: validate the borrowed bytes
/// in place, then allocate the `String` once.
fn decode_name(r: &mut R<'_>) -> Result<String, DecodeError> {
    std::str::from_utf8(r.bytes()?)
        .map(str::to_owned)
        .map_err(|_| DecodeError)
}

impl Request {
    /// Encode to fresh wire bytes. Convenience wrapper over
    /// [`Request::encode_into`] for callers without an arena (tests,
    /// one-off messages); hot paths use the arena form directly.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_into(&mut EncodeBuf::new()).to_vec()
    }

    /// Encode into a reusable arena, returning the frame as refcounted
    /// bytes (no copy out of the arena).
    pub fn encode_into(&self, buf: &mut EncodeBuf) -> Bytes {
        let mut w = W(buf.buf());
        self.encode_body(&mut w);
        buf.take()
    }

    /// Append this request's wire body to `w` (no framing, no trailer —
    /// bare requests are not sealed; framed carriers add their own).
    fn encode_body(&self, w: &mut W<'_>) {
        match self {
            Request::MemAlloc { len } => {
                w.u8(0);
                w.u64(*len);
            }
            Request::MemFree { ptr } => {
                w.u8(1);
                w.u64(ptr.0);
            }
            Request::MemCpyH2D { dst, len, protocol } => {
                w.u8(2);
                w.u64(dst.0);
                w.u64(*len);
                encode_protocol(w, protocol);
            }
            Request::MemCpyD2H { src, len, protocol } => {
                w.u8(3);
                w.u64(src.0);
                w.u64(*len);
                encode_protocol(w, protocol);
            }
            Request::KernelCreate { name } => {
                w.u8(4);
                w.bytes(name.as_bytes());
            }
            Request::KernelSetArgs { args } => {
                w.u8(5);
                w.u32(args.len() as u32);
                for a in args {
                    encode_arg(w, a);
                }
            }
            Request::KernelRun { grid, block } => {
                w.u8(6);
                for v in [grid.0, grid.1, grid.2, block.0, block.1, block.2] {
                    w.u32(v);
                }
            }
            Request::PeerSend {
                src,
                len,
                peer,
                block,
            } => {
                w.u8(7);
                w.u64(src.0);
                w.u64(*len);
                w.u32(*peer);
                w.u64(*block);
            }
            Request::PeerRecv {
                dst,
                len,
                from,
                block,
            } => {
                w.u8(8);
                w.u64(dst.0);
                w.u64(*len);
                w.u32(*from);
                w.u64(*block);
            }
            Request::MemSet { ptr, len, byte } => {
                w.u8(10);
                w.u64(ptr.0);
                w.u64(*len);
                w.u8(*byte);
            }
            Request::Ping => w.u8(11),
            Request::Shutdown => w.u8(9),
            Request::Launch {
                name,
                args,
                grid,
                block,
            } => {
                w.u8(12);
                w.bytes(name.as_bytes());
                w.u32(args.len() as u32);
                for a in args {
                    encode_arg(w, a);
                }
                for v in [grid.0, grid.1, grid.2, block.0, block.1, block.2] {
                    w.u32(v);
                }
            }
            Request::MemAllocAt { virt, len } => {
                w.u8(13);
                w.u64(*virt);
                w.u64(*len);
            }
            Request::Snapshot { regions, block } => {
                w.u8(14);
                encode_regions(w, regions, *block);
            }
            Request::Restore { regions, block } => {
                w.u8(15);
                encode_regions(w, regions, *block);
            }
        }
    }

    /// Decode from wire bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = R(buf, 0);
        let req = match r.u8()? {
            0 => Request::MemAlloc { len: r.u64()? },
            1 => Request::MemFree {
                ptr: DevicePtr(r.u64()?),
            },
            2 => Request::MemCpyH2D {
                dst: DevicePtr(r.u64()?),
                len: r.u64()?,
                protocol: decode_protocol(&mut r)?,
            },
            3 => Request::MemCpyD2H {
                src: DevicePtr(r.u64()?),
                len: r.u64()?,
                protocol: decode_protocol(&mut r)?,
            },
            4 => Request::KernelCreate {
                name: decode_name(&mut r)?,
            },
            5 => {
                let n = r.u32()?;
                let mut args = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    args.push(decode_arg(&mut r)?);
                }
                Request::KernelSetArgs { args }
            }
            6 => {
                let mut v = [0u32; 6];
                for slot in &mut v {
                    *slot = r.u32()?;
                }
                Request::KernelRun {
                    grid: (v[0], v[1], v[2]),
                    block: (v[3], v[4], v[5]),
                }
            }
            7 => Request::PeerSend {
                src: DevicePtr(r.u64()?),
                len: r.u64()?,
                peer: r.u32()?,
                block: r.u64()?,
            },
            8 => Request::PeerRecv {
                dst: DevicePtr(r.u64()?),
                len: r.u64()?,
                from: r.u32()?,
                block: r.u64()?,
            },
            9 => Request::Shutdown,
            10 => Request::MemSet {
                ptr: DevicePtr(r.u64()?),
                len: r.u64()?,
                byte: r.u8()?,
            },
            11 => Request::Ping,
            12 => {
                let name = decode_name(&mut r)?;
                let n = r.u32()?;
                let mut args = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    args.push(decode_arg(&mut r)?);
                }
                let mut v = [0u32; 6];
                for slot in &mut v {
                    *slot = r.u32()?;
                }
                Request::Launch {
                    name,
                    args,
                    grid: (v[0], v[1], v[2]),
                    block: (v[3], v[4], v[5]),
                }
            }
            13 => Request::MemAllocAt {
                virt: r.u64()?,
                len: r.u64()?,
            },
            14 => {
                let (regions, block) = decode_regions(&mut r)?;
                Request::Snapshot { regions, block }
            }
            15 => {
                let (regions, block) = decode_regions(&mut r)?;
                Request::Restore { regions, block }
            }
            _ => return Err(DecodeError),
        };
        r.finish()?;
        Ok(req)
    }

    /// True for operations a command stream may carry inside a
    /// [`StreamBatch`]: fire-and-forget commands whose only reply is the
    /// batch's cumulative ack. Requests that stream data *back* to the
    /// front-end (D2H, peer exchange) or control the daemon itself
    /// (ping/shutdown) must go through the ordinary request/response path.
    pub fn batchable(&self) -> bool {
        matches!(
            self,
            Request::MemAlloc { .. }
                | Request::MemAllocAt { .. }
                | Request::MemFree { .. }
                | Request::MemSet { .. }
                | Request::MemCpyH2D { .. }
                | Request::KernelCreate { .. }
                | Request::KernelSetArgs { .. }
                | Request::KernelRun { .. }
                | Request::Launch { .. }
        )
    }
}

/// Marker byte distinguishing a [`RequestFrame`] from a bare [`Request`]
/// on the wire (bare request opcodes stay below it).
pub const FRAME_MARKER: u8 = 0xFB;

/// A retryable request envelope: a [`Request`] plus the sequence numbers
/// the daemon needs to dedupe replays.
///
/// `op_id` identifies the logical operation (monotonic per front-end
/// session); `attempt` counts retransmissions of that operation. The
/// daemon replies on [`ac_tags::response_tag`]`(op_id, attempt)` and the
/// data phase (if any) uses [`ac_tags::data_tag`]`(op_id, attempt)`, so
/// traffic from an abandoned attempt can never satisfy the current one.
#[derive(Clone, PartialEq, Debug)]
pub struct RequestFrame {
    /// Logical operation id, monotonic per front-end.
    pub op_id: u64,
    /// Retransmission counter, 0 for the first send.
    pub attempt: u32,
    /// Assignment epoch of the sender's grant (health plane). Daemons
    /// fence frames whose epoch is older than their current fence; `0`
    /// means "unstamped" (legacy client) and is never fenced.
    pub epoch: u64,
    /// The operation itself.
    pub req: Request,
}

impl RequestFrame {
    /// Encode to fresh wire bytes (see [`RequestFrame::encode_into`]).
    pub fn encode(&self) -> Vec<u8> {
        self.encode_into(&mut EncodeBuf::new()).to_vec()
    }

    /// Encode into a reusable arena (marker, op_id, attempt, epoch,
    /// request body inlined, CRC32 trailer) — one frame, zero intermediate
    /// allocations.
    pub fn encode_into(&self, buf: &mut EncodeBuf) -> Bytes {
        let mut w = W(buf.buf());
        w.u8(FRAME_MARKER);
        w.u64(self.op_id);
        w.u32(self.attempt);
        w.u64(self.epoch);
        self.req.encode_body(&mut w);
        seal_take(buf)
    }

    /// Decode a framed request (the marker byte is required). A CRC
    /// mismatch — the frame was damaged in flight — fails like any other
    /// malformed header.
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        let body = unseal(buf)?;
        let mut r = R(body, 0);
        if r.u8()? != FRAME_MARKER {
            return Err(DecodeError);
        }
        let op_id = r.u64()?;
        let attempt = r.u32()?;
        let epoch = r.u64()?;
        let req = Request::decode(&body[r.1..])?;
        Ok(RequestFrame {
            op_id,
            attempt,
            epoch,
            req,
        })
    }
}

/// Marker byte distinguishing a [`StreamBatch`] from bare requests and
/// [`RequestFrame`]s on the wire.
pub const BATCH_MARKER: u8 = 0xFC;

/// A batched frame from one command stream: several small queued requests
/// packed into a single fabric message. The daemon executes the commands
/// strictly in order and answers with **one** cumulative [`StreamAck`] on
/// [`ac_tags::stream_ack_tag`]`(stream)` covering the whole batch, so an
/// in-flight window of `w` commands costs `⌈w / batch⌉` round trips
/// instead of `w`.
///
/// Commands are numbered consecutively from `first_seq` in submission
/// order; host→device payloads for any `MemCpyH2D` commands follow the
/// frame on [`ac_tags::stream_data_tag`]`(stream)` in the same order.
/// Batches ride the same [`ac_tags::REQUEST`] tag as ordinary requests,
/// so the fabric's non-overtaking guarantee serializes a client's batches
/// against its plain requests — a front-end only needs to *flush* (not
/// drain) a stream before issuing a dependent plain request.
#[derive(Clone, PartialEq, Debug)]
pub struct StreamBatch {
    /// Stream identifier (scopes ack/data tags).
    pub stream: u32,
    /// Sequence number of the first command in the batch.
    pub first_seq: u64,
    /// Assignment epoch of the sender's grant (health plane); `0` means
    /// unstamped. A fenced batch is rejected whole with one cumulative
    /// [`StreamAck`] carrying [`Status::StaleEpoch`].
    pub epoch: u64,
    /// The commands, in submission order. Each must be
    /// [`Request::batchable`].
    pub cmds: Vec<Request>,
}

impl StreamBatch {
    /// Encode to fresh wire bytes (see [`StreamBatch::encode_into`]).
    pub fn encode(&self) -> Vec<u8> {
        self.encode_into(&mut EncodeBuf::new()).to_vec()
    }

    /// Encode into a reusable arena (marker, stream, first_seq, epoch,
    /// count, each command length-prefixed, CRC32 trailer). Command bodies
    /// encode in place with their length prefix patched in afterwards, so
    /// a batch of `n` commands costs zero intermediate allocations instead
    /// of `n` nested `Vec`s.
    pub fn encode_into(&self, buf: &mut EncodeBuf) -> Bytes {
        let mut w = W(buf.buf());
        w.u8(BATCH_MARKER);
        w.u32(self.stream);
        w.u64(self.first_seq);
        w.u64(self.epoch);
        w.u32(self.cmds.len() as u32);
        for cmd in &self.cmds {
            let prefix = w.len();
            w.u32(0);
            let start = w.len();
            cmd.encode_body(&mut w);
            w.patch_u32(prefix, (w.len() - start) as u32);
        }
        seal_take(buf)
    }

    /// Decode a stream batch (the marker byte is required).
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        let buf = unseal(buf)?;
        let mut r = R(buf, 0);
        if r.u8()? != BATCH_MARKER {
            return Err(DecodeError);
        }
        let stream = r.u32()?;
        let first_seq = r.u64()?;
        let epoch = r.u64()?;
        let n = r.u32()?;
        let mut cmds = Vec::with_capacity(n as usize);
        for _ in 0..n {
            cmds.push(Request::decode(r.bytes()?)?);
        }
        r.finish()?;
        Ok(StreamBatch {
            stream,
            first_seq,
            epoch,
            cmds,
        })
    }
}

/// Cumulative acknowledgement for a [`StreamBatch`]: covers every command
/// up to and including `seq`. `status` is `Ok` iff all of them succeeded;
/// otherwise it is the *first* failure in the batch (later commands still
/// execute so the stream's data-tag pairing never skews, but the client
/// latches the first error as its sticky stream error). `value` carries
/// the last command's response value (unused by streams today, but kept
/// for symmetry with [`Response`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StreamAck {
    /// Highest command sequence number covered by this ack.
    pub seq: u64,
    /// `Ok`, or the first failure among the acked commands.
    pub status: Status,
    /// Response value of the last command in the batch.
    pub value: u64,
}

impl StreamAck {
    /// Encode to fresh wire bytes (see [`StreamAck::encode_into`]).
    pub fn encode(&self) -> Vec<u8> {
        self.encode_into(&mut EncodeBuf::new()).to_vec()
    }

    /// Encode into a reusable arena (with a CRC32 trailer).
    pub fn encode_into(&self, buf: &mut EncodeBuf) -> Bytes {
        let mut w = W(buf.buf());
        w.u64(self.seq);
        w.u8(self.status.to_u8());
        w.u64(self.value);
        seal_take(buf)
    }

    /// Decode from wire bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        let buf = unseal(buf)?;
        let mut r = R(buf, 0);
        let seq = r.u64()?;
        let status = Status::from_u8(r.u8()?).ok_or(DecodeError)?;
        let value = r.u64()?;
        r.finish()?;
        Ok(StreamAck { seq, status, value })
    }
}

/// A decoded request header: a legacy bare [`Request`] (replies on
/// [`ac_tags::RESPONSE`], no dedupe), a [`RequestFrame`], or a
/// [`StreamBatch`] from a command stream.
#[derive(Clone, PartialEq, Debug)]
pub enum AnyRequest {
    /// Unframed request from a client without retry enabled.
    Bare(Request),
    /// Framed, retryable request.
    Framed(RequestFrame),
    /// Batched command-stream frame, acked cumulatively.
    Batch(StreamBatch),
}

impl AnyRequest {
    /// Decode any wire form, keyed on the marker byte.
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        match buf.first() {
            Some(&FRAME_MARKER) => Ok(AnyRequest::Framed(RequestFrame::decode(buf)?)),
            Some(&BATCH_MARKER) => Ok(AnyRequest::Batch(StreamBatch::decode(buf)?)),
            _ => Ok(AnyRequest::Bare(Request::decode(buf)?)),
        }
    }
}

impl Response {
    /// Encode to fresh wire bytes (see [`Response::encode_into`]).
    pub fn encode(&self) -> Vec<u8> {
        self.encode_into(&mut EncodeBuf::new()).to_vec()
    }

    /// Encode into a reusable arena (with a CRC32 trailer).
    pub fn encode_into(&self, buf: &mut EncodeBuf) -> Bytes {
        let mut w = W(buf.buf());
        w.u8(self.status.to_u8());
        w.u64(self.value);
        seal_take(buf)
    }

    /// Decode from wire bytes. A CRC mismatch fails like a malformed
    /// response; retrying clients treat that as a lost reply.
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        let buf = unseal(buf)?;
        let mut r = R(buf, 0);
        let status = Status::from_u8(r.u8()?).ok_or(DecodeError)?;
        let value = r.u64()?;
        r.finish()?;
        Ok(Response { status, value })
    }
}

/// Marker byte distinguishing a [`ControlBatch`] from the other framed
/// wire forms.
pub const CTRL_MARKER: u8 = 0xFD;

/// Several small control messages (responses, stream acks) for one peer,
/// coalesced into a single fabric message on [`ac_tags::CTRL`].
///
/// Each entry carries the fabric tag its body would have been sent on
/// individually; the receiving fabric's unbundler re-delivers every entry
/// under its own tag, so clients are oblivious to batching. The frame is
/// sealed like every other header, and the whole batch is dropped on a CRC
/// mismatch — exactly the lost-message semantics the retry plane already
/// handles. Batches must stay under the fabric's eager threshold: the
/// unbundler only sees eager packets (nothing ever posts a receive on the
/// CTRL tag, so a rendezvous would never complete).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ControlBatch {
    /// `(tag, sealed body)` per coalesced message, in send order.
    pub entries: Vec<(u32, Bytes)>,
}

impl ControlBatch {
    /// Encode to fresh wire bytes (see [`ControlBatch::encode_into`]).
    pub fn encode(&self) -> Vec<u8> {
        self.encode_into(&mut EncodeBuf::new()).to_vec()
    }

    /// Encode into a reusable arena (marker, count, per entry the tag and
    /// length-prefixed body, CRC32 trailer over the whole frame).
    pub fn encode_into(&self, buf: &mut EncodeBuf) -> Bytes {
        let mut w = W(buf.buf());
        w.u8(CTRL_MARKER);
        w.u32(self.entries.len() as u32);
        for (tag, body) in &self.entries {
            w.u32(*tag);
            w.bytes(body);
        }
        seal_take(buf)
    }

    /// Decode from wire bytes. Entry bodies are returned as zero-copy
    /// slices of `buf`; a truncated, oversized, or damaged frame fails
    /// whole with `DecodeError`.
    pub fn decode(buf: &Bytes) -> Result<Self, DecodeError> {
        let body = unseal(buf)?;
        let mut r = R(body, 0);
        if r.u8()? != CTRL_MARKER {
            return Err(DecodeError);
        }
        let n = r.u32()? as usize;
        // Cap the pre-allocation: a corrupt count fails on the first short
        // read instead of reserving gigabytes.
        let mut entries = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            let tag = r.u32()?;
            let len = r.u32()? as usize;
            let start = r.1;
            let end = start.checked_add(len).ok_or(DecodeError)?;
            if end > body.len() {
                return Err(DecodeError);
            }
            r.1 = end;
            entries.push((tag, buf.slice(start..end)));
        }
        r.finish()?;
        Ok(ControlBatch { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(req: Request) {
        assert_eq!(Request::decode(&req.encode()), Ok(req));
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip(Request::MemAlloc { len: 1 << 30 });
        roundtrip(Request::MemFree {
            ptr: DevicePtr(4096),
        });
        roundtrip(Request::MemCpyH2D {
            dst: DevicePtr(512),
            len: 10_000_000,
            protocol: WireProtocol::Pipeline { block: 128 << 10 },
        });
        roundtrip(Request::MemCpyD2H {
            src: DevicePtr(512),
            len: 7,
            protocol: WireProtocol::Naive,
        });
        roundtrip(Request::KernelCreate {
            name: "dgemm_nt".into(),
        });
        roundtrip(Request::KernelSetArgs {
            args: vec![
                KernelArg::Ptr(DevicePtr(77)),
                KernelArg::U64(9),
                KernelArg::I64(-3),
                KernelArg::F64(-1.25),
            ],
        });
        roundtrip(Request::KernelRun {
            grid: (16, 16, 1),
            block: (32, 8, 1),
        });
        roundtrip(Request::PeerSend {
            src: DevicePtr(1),
            len: 2,
            peer: 3,
            block: 4,
        });
        roundtrip(Request::PeerRecv {
            dst: DevicePtr(1),
            len: 2,
            from: 3,
            block: 4,
        });
        roundtrip(Request::MemSet {
            ptr: DevicePtr(64),
            len: 1 << 20,
            byte: 0xAB,
        });
        roundtrip(Request::Ping);
        roundtrip(Request::Shutdown);
        roundtrip(Request::Launch {
            name: "la.dgemm".into(),
            args: vec![
                KernelArg::Ptr(DevicePtr(STREAM_VIRT_BASE + 256)),
                KernelArg::U64(128),
                KernelArg::F64(-1.0),
            ],
            grid: (8, 8, 1),
            block: (16, 16, 1),
        });
        roundtrip(Request::MemAllocAt {
            virt: STREAM_VIRT_BASE,
            len: 1 << 20,
        });
        roundtrip(Request::Snapshot {
            regions: vec![(4096, 1 << 20), (8192, 256)],
            block: 128 << 10,
        });
        roundtrip(Request::Restore {
            regions: vec![(4096, 1 << 20)],
            block: 128 << 10,
        });
        roundtrip(Request::Snapshot {
            regions: vec![],
            block: 1,
        });
    }

    #[test]
    fn batchable_partition_matches_data_direction() {
        // Everything that only flows front-end → daemon batches; anything
        // with a return data phase or daemon control does not.
        assert!(Request::MemAlloc { len: 1 }.batchable());
        assert!(Request::MemAllocAt { virt: 0, len: 1 }.batchable());
        assert!(Request::MemFree { ptr: DevicePtr(1) }.batchable());
        assert!(Request::MemSet {
            ptr: DevicePtr(1),
            len: 1,
            byte: 0
        }
        .batchable());
        assert!(Request::MemCpyH2D {
            dst: DevicePtr(1),
            len: 1,
            protocol: WireProtocol::Naive
        }
        .batchable());
        assert!(Request::Launch {
            name: "k".into(),
            args: vec![],
            grid: (1, 1, 1),
            block: (1, 1, 1)
        }
        .batchable());
        assert!(!Request::MemCpyD2H {
            src: DevicePtr(1),
            len: 1,
            protocol: WireProtocol::Naive
        }
        .batchable());
        assert!(!Request::PeerSend {
            src: DevicePtr(1),
            len: 1,
            peer: 2,
            block: 4
        }
        .batchable());
        assert!(!Request::Ping.batchable());
        assert!(!Request::Shutdown.batchable());
        // Checkpoint ops have data phases in both directions and belong to
        // the recovery plane, not to command streams.
        assert!(!Request::Snapshot {
            regions: vec![(1, 2)],
            block: 4
        }
        .batchable());
        assert!(!Request::Restore {
            regions: vec![(1, 2)],
            block: 4
        }
        .batchable());
    }

    #[test]
    fn stream_batches_roundtrip() {
        let batch = StreamBatch {
            stream: 0x0ABC_DEF0,
            first_seq: 41,
            epoch: 6,
            cmds: vec![
                Request::MemAllocAt {
                    virt: STREAM_VIRT_BASE + 4096,
                    len: 1 << 16,
                },
                Request::MemCpyH2D {
                    dst: DevicePtr(STREAM_VIRT_BASE + 4096),
                    len: 1 << 16,
                    protocol: WireProtocol::Pipeline { block: 128 << 10 },
                },
                Request::Launch {
                    name: "la.dlarfb".into(),
                    args: vec![KernelArg::Ptr(DevicePtr(7)), KernelArg::U64(3)],
                    grid: (4, 4, 1),
                    block: (32, 4, 1),
                },
            ],
        };
        let bytes = batch.encode();
        assert_eq!(StreamBatch::decode(&bytes), Ok(batch.clone()));
        assert_eq!(AnyRequest::decode(&bytes), Ok(AnyRequest::Batch(batch)));
        for cut in 0..bytes.len() {
            assert_eq!(StreamBatch::decode(&bytes[..cut]), Err(DecodeError));
        }
        // Empty batches are legal on the wire (the client never sends them).
        let empty = StreamBatch {
            stream: 1,
            first_seq: 0,
            epoch: 0,
            cmds: vec![],
        };
        assert_eq!(StreamBatch::decode(&empty.encode()), Ok(empty));
    }

    #[test]
    fn stream_acks_roundtrip() {
        for status in [Status::Ok, Status::InvalidPointer, Status::Malformed] {
            let ack = StreamAck {
                seq: u64::MAX - 3,
                status,
                value: 0x1234_5678,
            };
            let bytes = ack.encode();
            assert_eq!(StreamAck::decode(&bytes), Ok(ack));
            for cut in 0..bytes.len() {
                assert_eq!(StreamAck::decode(&bytes[..cut]), Err(DecodeError));
            }
        }
    }

    #[test]
    fn stream_tags_disjoint_from_scramble_ranges() {
        for id in [0u32, 1, 0x0FFF_FFFF, u32::MAX] {
            let ack = ac_tags::stream_ack_tag(id).0;
            let data = ac_tags::stream_data_tag(id).0;
            assert!((0xC000_0000..0xD000_0000).contains(&ack));
            assert!((0xD000_0000..0xE000_0000).contains(&data));
        }
        for op in 0..256u64 {
            for att in 0..6u32 {
                assert!((0x4000_0000..0x8000_0000).contains(&ac_tags::response_tag(op, att).0));
                assert!((0x8000_0000..0xC000_0000).contains(&ac_tags::data_tag(op, att).0));
            }
        }
    }

    #[test]
    fn frames_roundtrip_and_coexist_with_bare_requests() {
        let frame = RequestFrame {
            op_id: 0xDEAD_BEEF_0042,
            attempt: 3,
            epoch: 11,
            req: Request::MemCpyH2D {
                dst: DevicePtr(512),
                len: 1 << 20,
                protocol: WireProtocol::Pipeline { block: 128 << 10 },
            },
        };
        let bytes = frame.encode();
        assert_eq!(RequestFrame::decode(&bytes), Ok(frame.clone()));
        assert_eq!(AnyRequest::decode(&bytes), Ok(AnyRequest::Framed(frame)));
        // Bare requests still decode through the same entry point.
        let bare = Request::Ping.encode();
        assert_eq!(
            AnyRequest::decode(&bare),
            Ok(AnyRequest::Bare(Request::Ping))
        );
        // Truncated frames fail cleanly.
        let long = RequestFrame {
            op_id: 7,
            attempt: 0,
            epoch: 0,
            req: Request::KernelCreate { name: "qr".into() },
        }
        .encode();
        for cut in 0..long.len() {
            assert_eq!(RequestFrame::decode(&long[..cut]), Err(DecodeError));
        }
    }

    #[test]
    fn attempt_scoped_tags_are_distinct() {
        use dacc_fabric::mpi::Tag;
        // Distinct attempts of one op and adjacent ops must get distinct
        // tags, and none may collide with the reserved base tags.
        let mut seen = std::collections::HashSet::new();
        for op in 0..64u64 {
            for attempt in 0..4u32 {
                for tag in [
                    ac_tags::response_tag(op, attempt),
                    ac_tags::data_tag(op, attempt),
                ] {
                    assert!(seen.insert(tag), "tag collision at op={op} att={attempt}");
                    for base in [
                        ac_tags::REQUEST,
                        ac_tags::RESPONSE,
                        ac_tags::DATA,
                        ac_tags::PEER_DATA,
                        ac_tags::CTRL,
                    ] {
                        assert_ne!(tag, base);
                    }
                }
            }
        }
        let _: Tag = ac_tags::response_tag(0, 0);
    }

    #[test]
    fn responses_roundtrip() {
        for status in [
            Status::Ok,
            Status::OutOfMemory,
            Status::InvalidPointer,
            Status::OutOfBounds,
            Status::UnknownKernel,
            Status::BadArgs,
            Status::KernelFailed,
            Status::NoKernelBound,
            Status::Malformed,
            Status::Timeout,
            Status::StaleEpoch,
            Status::Corrupt,
        ] {
            let r = Response { status, value: 42 };
            assert_eq!(Response::decode(&r.encode()), Ok(r));
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical CRC-32/IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn damaged_headers_fail_their_crc() {
        let frame = RequestFrame {
            op_id: 9,
            attempt: 1,
            epoch: 2,
            req: Request::MemAlloc { len: 64 },
        };
        let mut bytes = frame.encode();
        assert_eq!(RequestFrame::decode(&bytes), Ok(frame));
        // Flip one payload bit the structural decoder would never notice
        // (the op_id field): only the CRC can catch this.
        bytes[3] ^= 0x10;
        assert_eq!(RequestFrame::decode(&bytes), Err(DecodeError));

        let resp = Response::ok();
        let mut bytes = resp.encode();
        bytes[4] ^= 0x01; // value field
        assert_eq!(Response::decode(&bytes), Err(DecodeError));

        let ack = StreamAck {
            seq: 7,
            status: Status::Ok,
            value: 0,
        };
        let mut bytes = ack.encode();
        bytes[0] ^= 0x80; // seq field
        assert_eq!(StreamAck::decode(&bytes), Err(DecodeError));
    }

    #[test]
    fn sealed_blocks_roundtrip_and_detect_damage() {
        let data: Vec<u8> = (0..200u8).collect();
        let p = Payload::from_vec(data.clone());
        let sealed = seal_block(&p);
        assert_eq!(sealed.len(), p.len() + CRC_TRAILER_BYTES);
        let opened = open_block(&sealed).expect("pristine block must verify");
        assert_eq!(opened.expect_bytes().as_ref(), data.as_slice());

        // Any single flipped bit is detected, wherever it lands (payload
        // or trailer).
        for i in [0usize, 100, 199, 200, 203] {
            let mut v = sealed.to_bytes().to_vec();
            v[i] ^= 0x40;
            assert_eq!(
                open_block(&Payload::from_vec(v)),
                Err(DecodeError),
                "flip at byte {i} must be detected"
            );
        }

        // The fault plane's own bit-flip is detected too.
        assert_eq!(open_block(&sealed.corrupted()), Err(DecodeError));

        // Size-only blocks keep timing parity and always verify.
        let s = seal_block(&Payload::size_only(1 << 20));
        assert_eq!(s.len(), (1 << 20) + CRC_TRAILER_BYTES);
        assert_eq!(open_block(&s), Ok(Payload::size_only(1 << 20)));

        // Runt blocks (shorter than a trailer) fail cleanly.
        assert_eq!(open_block(&Payload::from_vec(vec![1, 2])), Err(DecodeError));
        assert_eq!(open_block(&Payload::size_only(2)), Err(DecodeError));

        // An empty payload seals to just its trailer and verifies.
        let e = seal_block(&Payload::empty());
        assert_eq!(e.len(), CRC_TRAILER_BYTES);
        assert_eq!(open_block(&e).unwrap().len(), 0);
    }

    #[test]
    fn truncation_fails_cleanly() {
        let bytes = Request::MemCpyH2D {
            dst: DevicePtr(1),
            len: 2,
            protocol: WireProtocol::Pipeline { block: 3 },
        }
        .encode();
        for cut in 0..bytes.len() {
            assert_eq!(Request::decode(&bytes[..cut]), Err(DecodeError));
        }
    }

    #[test]
    fn zero_block_pipeline_rejected() {
        let mut bytes = Request::MemCpyH2D {
            dst: DevicePtr(1),
            len: 2,
            protocol: WireProtocol::Pipeline { block: 1 },
        }
        .encode();
        // Overwrite the block-size field (last 8 bytes) with zero.
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(&0u64.to_le_bytes());
        assert_eq!(Request::decode(&bytes), Err(DecodeError));
    }

    #[test]
    fn wire_protocol_block_math() {
        let p = WireProtocol::Pipeline { block: 128 << 10 };
        assert_eq!(p.block_count(0), 0);
        assert_eq!(p.block_count(1), 1);
        assert_eq!(p.block_count(128 << 10), 1);
        assert_eq!(p.block_count((128 << 10) + 1), 2);
        assert_eq!(p.block_count(64 << 20), 512);
        let n = WireProtocol::Naive;
        assert_eq!(n.block_count(64 << 20), 1);
        assert_eq!(n.block_size(64 << 20), 64 << 20);
        // Block larger than the message: clamp to the message.
        assert_eq!(p.block_size(1000), 1000);
    }

    #[test]
    fn crc_incremental_matches_one_shot() {
        let data: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(31) >> 3) as u8)
            .collect();
        // Splitting the input at every awkward boundary must not change
        // the checksum — this is what lets segment chains seal without
        // reassembly.
        for cut in [0usize, 1, 3, 7, 8, 9, 63, 64, 1000, 4095, 4096] {
            let mut c = Crc32::new();
            c.update(&data[..cut]);
            c.update(&data[cut..]);
            assert_eq!(c.finalize(), crc32(&data), "cut at {cut}");
        }
        // Many tiny updates, including empty ones.
        let mut c = Crc32::new();
        for chunk in data.chunks(5) {
            c.update(chunk);
            c.update(&[]);
        }
        assert_eq!(c.finalize(), crc32(&data));
    }

    #[test]
    fn sealing_shares_body_bytes_without_copying() {
        let p = Payload::from_vec((0..1000u32).map(|i| i as u8).collect());
        let body_ptr = p.expect_bytes().as_ptr();
        let sealed = seal_block(&p);
        // The sealed chain's first segment is the original body buffer,
        // not a copy; only the 4-byte trailer is new.
        assert_eq!(sealed.segments().len(), 2);
        assert_eq!(sealed.segments()[0].as_ptr(), body_ptr);
        assert_eq!(sealed.segments()[1].len(), CRC_TRAILER_BYTES as usize);
        // Opening hands the same buffer back as a zero-copy slice.
        let opened = open_block(&sealed).unwrap();
        assert_eq!(opened.expect_bytes().as_ptr(), body_ptr);
    }

    #[test]
    fn sealed_chains_verify_across_segment_boundaries() {
        // A chained payload (e.g. a re-sliced pipeline block) seals and
        // opens without reassembly.
        let a: Vec<u8> = (0..100u8).collect();
        let b: Vec<u8> = (100..180u8).collect();
        let chained = Payload::chain(vec![Bytes::from(a.clone()), Bytes::from(b.clone())]);
        let opened = open_block(&seal_block(&chained)).unwrap();
        let mut want = a;
        want.extend_from_slice(&b);
        assert_eq!(opened.to_bytes().as_ref(), want.as_slice());

        // Even a trailer split across segments verifies: re-slicing a
        // sealed chain can put the split anywhere.
        let sealed = seal_block(&Payload::from_vec(want.clone()));
        let flat = sealed.to_bytes();
        for cut in [1u64, 100, 179, 180, 181, 182, 183] {
            let rechained =
                Payload::chain(vec![flat.slice(..cut as usize), flat.slice(cut as usize..)]);
            let opened = open_block(&rechained).expect("split sealed block must verify");
            assert_eq!(opened.to_bytes().as_ref(), want.as_slice());
        }
    }

    #[test]
    fn control_batches_roundtrip() {
        let resp = Response {
            status: Status::Ok,
            value: 0xBEEF,
        }
        .encode();
        let ack = StreamAck {
            seq: 17,
            status: Status::Ok,
            value: 3,
        }
        .encode();
        let batch = ControlBatch {
            entries: vec![
                (ac_tags::response_tag(9, 0).0, Bytes::from(resp.clone())),
                (ac_tags::stream_ack_tag(4).0, Bytes::from(ack.clone())),
            ],
        };
        let bytes = Bytes::from(batch.encode());
        let back = ControlBatch::decode(&bytes).unwrap();
        assert_eq!(back, batch);
        // Entries decode as zero-copy slices of the incoming frame.
        assert_eq!(back.entries[0].1.as_ref(), resp.as_slice());
        assert_eq!(
            Response::decode(&back.entries[0].1),
            Ok(Response {
                status: Status::Ok,
                value: 0xBEEF,
            })
        );
        assert_eq!(StreamAck::decode(&back.entries[1].1).unwrap().seq, 17);
        // Empty batches are legal on the wire.
        let empty = ControlBatch { entries: vec![] };
        assert_eq!(
            ControlBatch::decode(&Bytes::from(empty.encode())),
            Ok(empty)
        );
    }

    #[test]
    fn damaged_control_batches_fail_cleanly() {
        let batch = ControlBatch {
            entries: vec![(7, Bytes::from(vec![1, 2, 3])), (8, Bytes::new())],
        };
        let bytes = batch.encode();
        // Truncation at every length fails without panicking.
        for cut in 0..bytes.len() {
            assert_eq!(
                ControlBatch::decode(&Bytes::from(bytes[..cut].to_vec())),
                Err(DecodeError),
                "truncation at {cut}"
            );
        }
        // Any flipped bit (marker, count, tag, length prefix, body,
        // trailer) is caught by the frame CRC.
        for i in 0..bytes.len() {
            let mut v = bytes.clone();
            v[i] ^= 0x04;
            assert_eq!(
                ControlBatch::decode(&Bytes::from(v)),
                Err(DecodeError),
                "flip at {i}"
            );
        }
        // An oversized length prefix that still passes the CRC (re-sealed
        // here to isolate the structural check) must fail, not panic.
        let mut v = bytes[..bytes.len() - 4].to_vec();
        v[9..13].copy_from_slice(&u32::MAX.to_le_bytes()); // first entry len
        let resealed = {
            let c = crc32(&v);
            v.extend_from_slice(&c.to_le_bytes());
            v
        };
        assert_eq!(
            ControlBatch::decode(&Bytes::from(resealed)),
            Err(DecodeError)
        );
    }

    #[test]
    fn arena_encoding_is_byte_identical_and_reuses_storage() {
        let frame = RequestFrame {
            op_id: 1,
            attempt: 0,
            epoch: 4,
            req: Request::Launch {
                name: "fill".into(),
                args: vec![KernelArg::Ptr(DevicePtr(64)), KernelArg::F64(0.5)],
                grid: (2, 2, 1),
                block: (32, 1, 1),
            },
        };
        let mut arena = EncodeBuf::new();
        let first = frame.encode_into(&mut arena);
        assert_eq!(first.as_ref(), frame.encode().as_slice());
        let base = first.as_ptr() as usize;
        drop(first);
        // Same arena, frame dropped: the next encode reuses the storage.
        let second = frame.encode_into(&mut arena);
        assert_eq!(second.as_ptr() as usize, base, "arena was not reclaimed");
        assert_eq!(second.as_ref(), frame.encode().as_slice());
    }
}
