//! `dacc-runtime` — the dynamic accelerator-cluster middleware.
//!
//! This is the paper's primary contribution: a software stack that makes
//! network-attached accelerators appear locally attached to any compute
//! node. A front-end library on each compute node translates CUDA-like API
//! calls (`acMemAlloc`, `acMemCpy`, `acKernelCreate/SetArgs/Run`) into
//! request messages; a back-end daemon on each accelerator executes them on
//! its GPU; an efficient pipelined memory-copy protocol built on GPUDirect
//! pinned buffers keeps remote-copy bandwidth close to the raw MPI ceiling.
//!
//! Modules:
//! * [`proto`] — the wire protocol (request/response + data blocks).
//! * [`daemon`] — the accelerator-side daemon.
//! * [`api`] — the compute-node-side computation API and protocols.
//! * [`failover`] — command-log replay onto ARM-granted replacement
//!   accelerators when one dies mid-job.
//! * [`stream`] — asynchronous in-order command streams: request fusion,
//!   windowed in-flight submission, and coalesced acks.
//! * [`opencl`] — an OpenCL-flavoured front-end over the same wire protocol.
//! * [`cluster`] — one-call assembly of ARM + daemons + compute nodes.
//!
//! # Example
//!
//! ```
//! use dacc_runtime::prelude::*;
//! use dacc_sim::prelude::*;
//! use dacc_fabric::payload::Payload;
//! use dacc_vgpu::kernel::KernelRegistry;
//! use dacc_vgpu::params::ExecMode;
//!
//! let mut sim = Sim::new();
//! let spec = ClusterSpec {
//!     compute_nodes: 1,
//!     accelerators: 1,
//!     mode: ExecMode::Functional,
//!     ..ClusterSpec::default()
//! };
//! let mut cluster = build_cluster(&sim, spec, KernelRegistry::new());
//! let ep = cluster.cn_endpoints.remove(0);
//! let daemon = cluster.daemon_rank(0);
//! let out = sim.spawn("app", async move {
//!     let ac = RemoteAccelerator::new(ep, daemon, FrontendConfig::default());
//!     let ptr = ac.mem_alloc(4).await.unwrap();
//!     ac.mem_cpy_h2d(&Payload::from_vec(vec![1, 2, 3, 4]), ptr).await.unwrap();
//!     let back = ac.mem_cpy_d2h(ptr, 4).await.unwrap();
//!     ac.shutdown().await.unwrap();
//!     back.expect_bytes().to_vec()
//! });
//! sim.run();
//! assert_eq!(out.try_take().unwrap(), vec![1, 2, 3, 4]);
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod cluster;
pub mod daemon;
pub mod failover;
pub mod opencl;
pub mod proto;
pub mod stream;

/// Common imports.
pub mod prelude {
    pub use crate::api::{
        device_to_device, AcDevice, AcError, FrontendConfig, RemoteAccelerator, RetryPolicy,
        TransferProtocol,
    };
    pub use crate::cluster::{build_cluster, build_cluster_chaos, AcProcess, Cluster, ClusterSpec};
    pub use crate::daemon::{
        run_daemon, run_daemon_chaos, run_daemon_traced, DaemonConfig, DaemonStats,
    };
    pub use crate::failover::{CheckpointPolicy, FailoverSession};
    pub use crate::opencl::{ClBuffer, ClCommandQueue, ClContext, ClKernel};
    pub use crate::proto::{
        ac_tags, Request, RequestFrame, Response, Status, StreamAck, StreamBatch, WireProtocol,
    };
    pub use crate::stream::{AcStream, StreamConfig, StreamEvent};
    pub use dacc_telemetry::{SpanGuard, Telemetry};
}

pub use prelude::*;
