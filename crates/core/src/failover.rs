//! ARM-driven accelerator failover (§III-A).
//!
//! A [`FailoverSession`] wraps one granted accelerator behind the same
//! `mem_*` / `launch` surface as [`RemoteAccelerator`], but records every
//! state-changing operation in a command log. When the accelerator stops
//! answering ([`AcError::Unreachable`] from the retry plane), the session
//! reports the failure to the ARM, receives a replacement grant in the same
//! round trip, and **replays** the log against the replacement — allocations
//! re-issued, host→device copies re-driven from their retained payloads,
//! kernels re-run in order — so the in-flight job completes with degraded
//! timing instead of failing.
//!
//! Device pointers handed out by the session are *virtual*: the session
//! mints them from its own address space and translates on every call, so
//! pointers held by the application (including interior pointers formed by
//! raw [`DevicePtr::offset`] arithmetic, as the hybrid linear-algebra
//! routines do) survive re-allocation at different physical addresses on the
//! replacement device.
//!
//! An unbounded log would make recovery cost — and retained host memory —
//! grow with the job's whole history. A [`CheckpointPolicy`] bounds both:
//! once the logged tail passes the policy's thresholds the session
//! snapshots the live device regions (daemon `Snapshot` opcode, pipelined
//! block streaming), **truncates** the log, and drops the retained H2D
//! payloads. Failover then re-allocates the checkpointed regions on the
//! replacement, restores their bytes in one `Restore` stream, and replays
//! only the post-checkpoint tail — O(live state + tail) instead of
//! O(history). A proactive eviction notice additionally attempts a fresh
//! pre-copy snapshot while the old accelerator is still draining, so the
//! migration carries the newest possible state. A checkpoint that fails
//! mid-snapshot (daemon died under it) is simply discarded: the previous
//! checkpoint and the full log are kept, and recovery falls back to them.
//!
//! Remaining limitations, by design of the prototype: peer-to-peer
//! transfers are not covered (see
//! [`device_to_device`](crate::api::device_to_device)); and the ARM control
//! plane itself is assumed reliable. Failure detection requires
//! `config.retry` to be set — without it, calls wait forever and failover
//! never triggers.

use std::cell::RefCell;
use std::rc::Rc;

use dacc_arm::client::ArmClient;
use dacc_arm::proto::GrantedAccelerator;
use dacc_arm::state::{AcceleratorId, JobId};
use dacc_fabric::mpi::Endpoint;
use dacc_fabric::payload::Payload;
use dacc_sim::trace::Tracer;
use dacc_vgpu::kernel::{KernelArg, LaunchConfig};
use dacc_vgpu::memory::DevicePtr;

use crate::api::{AcError, FrontendConfig, RemoteAccelerator};
use crate::proto::Status;

/// Base of the session's virtual device address space — far above any
/// physical device address the simulated GPUs hand out, so a virtual
/// pointer accidentally passed to a raw handle fails fast.
const VIRT_BASE: u64 = 1 << 48;
/// Alignment of minted virtual bases.
const VIRT_ALIGN: u64 = 256;

fn round_up(v: u64, align: u64) -> u64 {
    v.div_ceil(align) * align
}

/// When to checkpoint a [`FailoverSession`] automatically: after every
/// `every_ops` logged operations and/or every `every_bytes` retained
/// host→device payload bytes, whichever trips first. A dimension set to 0
/// is disabled; [`CheckpointPolicy::default`] checkpoints every 64 ops or
/// 8 MiB of retained payload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CheckpointPolicy {
    /// Checkpoint once this many operations are in the log (0 = never by
    /// op count).
    pub every_ops: u64,
    /// Checkpoint once the log retains this many H2D payload bytes
    /// (0 = never by bytes).
    pub every_bytes: u64,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            every_ops: 64,
            every_bytes: 8 << 20,
        }
    }
}

impl CheckpointPolicy {
    /// True when a log of `ops` operations retaining `bytes` payload bytes
    /// has outgrown this policy.
    pub fn due(&self, ops: u64, bytes: u64) -> bool {
        (self.every_ops > 0 && ops >= self.every_ops)
            || (self.every_bytes > 0 && bytes >= self.every_bytes)
    }
}

/// One region captured by a checkpoint: where it lives in the session's
/// virtual address space and the bytes it held at capture time.
#[derive(Clone)]
struct CkptRegion {
    virt: u64,
    /// The allocation's true length (may be 0; the translation span is
    /// `alloc_len.max(1)`).
    alloc_len: u64,
    data: Payload,
}

/// A completed device-state checkpoint: everything needed to rebuild the
/// live regions on a replacement accelerator without the pre-checkpoint log.
#[derive(Clone)]
struct Checkpoint {
    regions: Vec<CkptRegion>,
}

/// One logged state-changing operation (replayed on failover).
#[derive(Clone)]
enum LoggedOp {
    Alloc {
        virt: u64,
        len: u64,
    },
    Free {
        virt: u64,
    },
    H2D {
        virt: u64,
        data: Payload,
    },
    MemSet {
        virt: u64,
        len: u64,
        byte: u8,
    },
    Launch {
        name: String,
        cfg: LaunchConfig,
        args: Vec<KernelArg>,
    },
}

/// A live virtual allocation and its current physical backing.
struct Region {
    virt: u64,
    /// Translation span (`alloc_len.max(1)` so zero-length allocations
    /// still own an addressable base).
    len: u64,
    /// The allocation's true length, as requested.
    alloc_len: u64,
    real: DevicePtr,
}

fn translate_in(regions: &[Region], p: DevicePtr) -> Result<DevicePtr, AcError> {
    for r in regions {
        if p.0 >= r.virt && p.0 < r.virt + r.len {
            return Ok(DevicePtr(r.real.0 + (p.0 - r.virt)));
        }
    }
    Err(AcError::Local(format!(
        "pointer {:#x} is not inside any live session allocation",
        p.0
    )))
}

fn translate_args(regions: &[Region], args: &[KernelArg]) -> Result<Vec<KernelArg>, AcError> {
    args.iter()
        .map(|a| match a {
            KernelArg::Ptr(p) => translate_in(regions, *p).map(KernelArg::Ptr),
            other => Ok(*other),
        })
        .collect()
}

/// Wrap an ARM grant in a [`RemoteAccelerator`] stamped with the grant's
/// assignment epoch and watching the ARM's eviction channel, so a doomed
/// retry budget is cut short the moment an eviction notice lands.
fn wrap_grant(
    ep: &Endpoint,
    arm: &ArmClient,
    grant: &GrantedAccelerator,
    config: FrontendConfig,
    tracer: &Tracer,
) -> RemoteAccelerator {
    let watch = arm.clone();
    RemoteAccelerator::new(ep.clone(), grant.daemon_rank, config)
        .with_tracer(tracer.clone())
        .with_epoch(grant.epoch)
        .with_eviction_watch(Rc::new(move || watch.eviction_pending()))
}

struct Inner {
    accel: RemoteAccelerator,
    accel_id: AcceleratorId,
    regions: Vec<Region>,
    log: Vec<LoggedOp>,
    next_virt: u64,
    failovers: u32,
    /// Latest completed device-state checkpoint; the log holds only the
    /// tail of operations since it was taken.
    checkpoint: Option<Checkpoint>,
    /// H2D payload bytes currently retained by the log tail (drops to 0 at
    /// every checkpoint).
    retained_bytes: u64,
}

/// A fault-tolerant session on one accelerator (see module docs).
///
/// Clones share state: all clones observe a failover together.
#[derive(Clone)]
pub struct FailoverSession {
    ep: Endpoint,
    arm: ArmClient,
    job: JobId,
    config: FrontendConfig,
    tracer: Tracer,
    max_failovers: u32,
    inner: Rc<RefCell<Inner>>,
}

impl FailoverSession {
    /// Wrap the granted accelerator in a failover session. `config.retry`
    /// should be set — it is the failure detector.
    pub fn new(
        ep: Endpoint,
        arm: ArmClient,
        job: JobId,
        grant: GrantedAccelerator,
        config: FrontendConfig,
        tracer: Tracer,
    ) -> Self {
        let accel = wrap_grant(&ep, &arm, &grant, config, &tracer);
        FailoverSession {
            ep,
            arm,
            job,
            config,
            tracer,
            max_failovers: 4,
            inner: Rc::new(RefCell::new(Inner {
                accel,
                accel_id: grant.accel,
                regions: Vec::new(),
                log: Vec::new(),
                next_virt: VIRT_BASE,
                failovers: 0,
                checkpoint: None,
                retained_bytes: 0,
            })),
        }
    }

    /// Cap on accelerator replacements over the session's lifetime
    /// (default 4).
    pub fn with_max_failovers(mut self, n: u32) -> Self {
        self.max_failovers = n;
        self
    }

    /// Install (or replace) the automatic checkpoint policy. Equivalent to
    /// setting [`FrontendConfig::checkpoint`] before building the session.
    pub fn with_checkpoint_policy(mut self, policy: CheckpointPolicy) -> Self {
        self.config.checkpoint = Some(policy);
        self
    }

    /// Operations currently in the command log (the replay tail).
    pub fn logged_ops(&self) -> u64 {
        self.inner.borrow().log.len() as u64
    }

    /// Host→device payload bytes retained by the log tail for replay.
    pub fn retained_log_bytes(&self) -> u64 {
        self.inner.borrow().retained_bytes
    }

    /// True once the session holds a completed device-state checkpoint.
    pub fn has_checkpoint(&self) -> bool {
        self.inner.borrow().checkpoint.is_some()
    }

    /// The identity of the accelerator currently serving the session.
    pub fn accel_id(&self) -> AcceleratorId {
        self.inner.borrow().accel_id
    }

    /// How many times the session has failed over.
    pub fn failovers(&self) -> u32 {
        self.inner.borrow().failovers
    }

    /// The raw handle onto the current accelerator (e.g. for shutdown).
    /// Pointers minted by this session are virtual and must not be passed
    /// to the raw handle.
    pub fn current_accelerator(&self) -> RemoteAccelerator {
        self.inner.borrow().accel.clone()
    }

    fn current(&self) -> RemoteAccelerator {
        self.inner.borrow().accel.clone()
    }

    fn translate(&self, p: DevicePtr) -> Result<DevicePtr, AcError> {
        translate_in(&self.inner.borrow().regions, p)
    }

    /// Report the current accelerator dead, obtain a replacement in the
    /// same round trip, replay the command log onto it (the reactive
    /// path, driven by an exhausted retry budget).
    async fn failover(&self) -> Result<(), AcError> {
        let old_id = self.inner.borrow().accel_id;
        self.tracer
            .record(self.ep.fabric().handle(), "arm.failover", || {
                format!(
                    "job {}: accel {} unreachable, requesting replacement",
                    self.job.0, old_id.0
                )
            });
        self.ep.fabric().telemetry().count("failover.count", 1);
        let grant = self
            .arm
            .report_failure(self.job, old_id)
            .await
            .map_err(|e| AcError::Local(format!("failover denied: {e}")))?;
        self.migrate_to(grant).await
    }

    /// Apply a pending ARM eviction notice for the current accelerator,
    /// if any: migrate onto the replacement grant carried by the notice
    /// (no `ReportFailure` round trip needed), or — when the notice
    /// carries none, as after a lease expiry — allocate a fresh
    /// accelerator and replay onto that. Returns whether a notice was
    /// applied.
    async fn apply_eviction(&self) -> Result<bool, AcError> {
        self.arm.pump_evictions().await;
        let (accel_id, epoch) = {
            let inner = self.inner.borrow();
            (inner.accel_id, inner.accel.epoch())
        };
        let Some(ev) = self.arm.take_eviction(accel_id) else {
            return Ok(false);
        };
        if ev.epoch != 0 && epoch != 0 && ev.epoch < epoch {
            // A stale notice from an earlier tenure of the same
            // accelerator; the current grant is newer than the eviction.
            return Ok(false);
        }
        self.ep.fabric().telemetry().count("failover.evictions", 1);
        let reason = ev.reason;
        self.tracer
            .record(self.ep.fabric().handle(), "arm.failover", || {
                format!(
                    "job {}: accel {} evicted ({reason:?}), proactive migration",
                    self.job.0, accel_id.0
                )
            });
        if self.config.checkpoint.is_some() {
            // Pre-copy: the evicted accelerator is draining, not dead, so
            // try to capture its freshest state before migrating — the
            // replacement then restores this snapshot instead of replaying
            // the whole tail. Failure is fine; migration proceeds from the
            // previous checkpoint and the longer log.
            match self.checkpoint().await {
                Ok(()) => self.ep.fabric().telemetry().count("failover.precopy", 1),
                Err(_) => self
                    .ep
                    .fabric()
                    .telemetry()
                    .count("failover.precopy_failed", 1),
            }
        }
        match ev.replacement {
            Some(grant) => self.migrate_to(grant).await?,
            None => {
                let mut grants = self.arm.allocate(self.job, 1).await.map_err(|e| {
                    AcError::Local(format!("re-allocation after eviction denied: {e}"))
                })?;
                self.migrate_to(grants.remove(0)).await?;
            }
        }
        Ok(true)
    }

    /// Recover after the current accelerator became unusable (retry
    /// budget exhausted or stale-epoch fencing): prefer a proactive
    /// eviction notice — its replacement grant is already in hand — and
    /// fall back to the reactive [`Self::failover`] report.
    async fn recover(&self) -> Result<(), AcError> {
        if self.apply_eviction().await? {
            return Ok(());
        }
        self.failover().await
    }

    /// [`Self::recover`], tolerating a *recoverable* failure of the
    /// recovery itself: a replacement grant can already be fenced or
    /// unreachable by the time the replay touches it (its lease may have
    /// expired while this client was still timing out on the old
    /// accelerator). Such a failure leaves the session on its old grant
    /// and reports success; the caller's op loop burns one more of its
    /// `max_failovers` tries and recovery runs again, by which point the
    /// ARM has posted a fresher eviction notice or can grant anew.
    async fn recover_tolerant(&self) -> Result<(), AcError> {
        match self.recover().await {
            Err(AcError::Unreachable | AcError::Remote(Status::StaleEpoch)) => Ok(()),
            other => other,
        }
    }

    /// Cheap pre-operation poll: migrate now if the ARM has already
    /// evicted us (drain, quarantine), instead of discovering it through
    /// a fenced or timed-out operation.
    async fn maybe_migrate(&self) -> Result<(), AcError> {
        if self.arm.eviction_pending() {
            self.apply_eviction().await?;
        }
        Ok(())
    }

    /// Snapshot the session's live device regions and truncate the command
    /// log to the operations issued after the snapshot began, dropping the
    /// retained H2D payloads with it.
    ///
    /// On success, recovery cost from here on is O(live state + log tail).
    /// On failure — the accelerator died mid-snapshot, say — the partial
    /// snapshot is discarded and the session keeps its previous checkpoint
    /// and its full log, so recovery falls back one checkpoint rather than
    /// trusting half-copied state. The snapshot itself is **not** retried
    /// through the failover path (that would recurse into recovery); the
    /// next operation's retry loop drives recovery as usual.
    pub async fn checkpoint(&self) -> Result<(), AcError> {
        let accel = self.current();
        let (captured, reals, logged) = {
            let inner = self.inner.borrow();
            let captured: Vec<(u64, u64)> = inner
                .regions
                .iter()
                .map(|r| (r.virt, r.alloc_len))
                .collect();
            let reals: Vec<(DevicePtr, u64)> = inner
                .regions
                .iter()
                .map(|r| (r.real, r.alloc_len))
                .collect();
            (captured, reals, inner.log.len())
        };
        let tele = self.ep.fabric().telemetry();
        let job = self.job.0;
        let nregions = reals.len();
        let total: u64 = reals.iter().map(|(_, l)| *l).sum();
        let span = tele
            .span(self.ep.fabric().handle(), "failover.checkpoint", || {
                format!("job {job}: {nregions} regions, {total}B")
            })
            .bytes(total);
        let data = accel.snapshot(&reals).await?;
        drop(span);
        let mut inner = self.inner.borrow_mut();
        inner.checkpoint = Some(Checkpoint {
            regions: captured
                .into_iter()
                .zip(data)
                .map(|((virt, alloc_len), data)| CkptRegion {
                    virt,
                    alloc_len,
                    data,
                })
                .collect(),
        });
        // Truncate exactly the prefix that predates the snapshot;
        // operations logged while the snapshot streamed stay in the tail.
        inner.log.drain(..logged);
        inner.retained_bytes = inner
            .log
            .iter()
            .map(|op| match op {
                LoggedOp::H2D { data, .. } => data.len(),
                _ => 0,
            })
            .sum();
        drop(inner);
        tele.count("failover.checkpoints", 1);
        tele.count("failover.checkpoint_bytes", total);
        self.tracer
            .record(self.ep.fabric().handle(), "failover.checkpoint", || {
                format!(
                    "job {job}: checkpointed {nregions} regions ({total}B), {logged} ops truncated"
                )
            });
        Ok(())
    }

    /// Checkpoint when the configured policy says the log has outgrown its
    /// thresholds; a failed automatic checkpoint is traced and swallowed
    /// (the session just keeps its longer log).
    async fn maybe_checkpoint(&self) {
        let Some(policy) = self.config.checkpoint else {
            return;
        };
        let (ops, bytes) = {
            let inner = self.inner.borrow();
            (inner.log.len() as u64, inner.retained_bytes)
        };
        if !policy.due(ops, bytes) {
            return;
        }
        if self.checkpoint().await.is_err() {
            self.ep
                .fabric()
                .telemetry()
                .count("failover.checkpoint_failed", 1);
            self.tracer
                .record(self.ep.fabric().handle(), "failover.checkpoint", || {
                    format!(
                        "job {}: automatic checkpoint failed, keeping full log",
                        self.job.0
                    )
                });
        }
    }

    /// Replay the command log onto `grant` and swap it in as the
    /// session's current accelerator: the shared tail of reactive
    /// failover and proactive eviction-driven migration.
    async fn migrate_to(&self, grant: GrantedAccelerator) -> Result<(), AcError> {
        let old_id = self.inner.borrow().accel_id;
        let tele = self.ep.fabric().telemetry();
        let job = self.job.0;
        let _replay_span = tele
            .span(self.ep.fabric().handle(), "failover.replay", || {
                format!("job {job}: replacing accel {}", old_id.0)
            })
            .op(job);
        let accel = wrap_grant(&self.ep, &self.arm, &grant, self.config, &self.tracer);
        // Clone the recovery state (payload clones are reference-counted),
        // then rebuild without holding the borrow across awaits.
        let (ckpt, log): (Option<Checkpoint>, Vec<LoggedOp>) = {
            let inner = self.inner.borrow();
            (inner.checkpoint.clone(), inner.log.clone())
        };
        let mut regions: Vec<Region> = Vec::new();
        let mut restored_bytes = 0u64;
        if let Some(ckpt) = &ckpt {
            // Rebuild the checkpointed regions first — allocations, then
            // one multi-region restore stream — so the tail replays over
            // exactly the state it was logged against.
            let mut reals = Vec::with_capacity(ckpt.regions.len());
            for cr in &ckpt.regions {
                let real = accel.mem_alloc(cr.alloc_len).await?;
                regions.push(Region {
                    virt: cr.virt,
                    len: cr.alloc_len.max(1),
                    alloc_len: cr.alloc_len,
                    real,
                });
                reals.push((real, cr.alloc_len));
            }
            let data: Vec<Payload> = ckpt.regions.iter().map(|c| c.data.clone()).collect();
            accel.restore(&reals, &data).await?;
            restored_bytes = data.iter().map(Payload::len).sum();
        }
        for op in &log {
            match op {
                LoggedOp::Alloc { virt, len } => {
                    let real = accel.mem_alloc(*len).await?;
                    regions.push(Region {
                        virt: *virt,
                        len: (*len).max(1),
                        alloc_len: *len,
                        real,
                    });
                }
                LoggedOp::Free { virt } => {
                    let real = translate_in(&regions, DevicePtr(*virt))?;
                    accel.mem_free(real).await?;
                    regions.retain(|r| r.virt != *virt);
                }
                LoggedOp::H2D { virt, data } => {
                    let real = translate_in(&regions, DevicePtr(*virt))?;
                    accel.mem_cpy_h2d(data, real).await?;
                }
                LoggedOp::MemSet { virt, len, byte } => {
                    let real = translate_in(&regions, DevicePtr(*virt))?;
                    accel.mem_set(real, *len, *byte).await?;
                }
                LoggedOp::Launch { name, cfg, args } => {
                    let real_args = translate_args(&regions, args)?;
                    accel.launch(name, *cfg, &real_args).await?;
                }
            }
        }
        let replayed = log.len();
        tele.count("failover.replayed_ops", replayed as u64);
        tele.count("failover.tail_replayed_ops", replayed as u64);
        tele.count("failover.restored_bytes", restored_bytes);
        let mut inner = self.inner.borrow_mut();
        inner.accel = accel;
        inner.accel_id = grant.accel;
        inner.regions = regions;
        inner.failovers += 1;
        drop(inner);
        self.tracer
            .record(self.ep.fabric().handle(), "arm.failover", || {
                format!(
                    "job {}: failed over accel {} -> accel {} (rank {}), \
                     {restored_bytes}B restored + {replayed} ops replayed",
                    self.job.0, old_id.0, grant.accel.0, grant.daemon_rank.0
                )
            });
        Ok(())
    }

    /// Allocate `len` device bytes; returns a session-virtual pointer.
    pub async fn mem_alloc(&self, len: u64) -> Result<DevicePtr, AcError> {
        self.maybe_migrate().await?;
        let mut tries = 0;
        loop {
            match self.current().mem_alloc(len).await {
                Err(AcError::Unreachable | AcError::Remote(Status::StaleEpoch))
                    if tries < self.max_failovers =>
                {
                    tries += 1;
                    self.recover_tolerant().await?;
                }
                Err(e) => return Err(e),
                Ok(real) => {
                    let virt = {
                        let mut inner = self.inner.borrow_mut();
                        let virt = inner.next_virt;
                        inner.next_virt += round_up(len.max(1), VIRT_ALIGN);
                        inner.regions.push(Region {
                            virt,
                            len: len.max(1),
                            alloc_len: len,
                            real,
                        });
                        inner.log.push(LoggedOp::Alloc { virt, len });
                        virt
                    };
                    self.maybe_checkpoint().await;
                    return Ok(DevicePtr(virt));
                }
            }
        }
    }

    /// Free a session allocation (`ptr` must be the allocation base).
    pub async fn mem_free(&self, ptr: DevicePtr) -> Result<(), AcError> {
        self.maybe_migrate().await?;
        let mut tries = 0;
        loop {
            let real = self.translate(ptr)?;
            match self.current().mem_free(real).await {
                Err(AcError::Unreachable | AcError::Remote(Status::StaleEpoch))
                    if tries < self.max_failovers =>
                {
                    tries += 1;
                    self.recover_tolerant().await?;
                }
                Err(e) => return Err(e),
                Ok(()) => {
                    {
                        let mut inner = self.inner.borrow_mut();
                        inner.regions.retain(|r| r.virt != ptr.0);
                        inner.log.push(LoggedOp::Free { virt: ptr.0 });
                    }
                    self.maybe_checkpoint().await;
                    return Ok(());
                }
            }
        }
    }

    /// Copy host data to device memory; the payload is retained for replay.
    pub async fn mem_cpy_h2d(&self, src: &Payload, dst: DevicePtr) -> Result<(), AcError> {
        self.maybe_migrate().await?;
        let mut tries = 0;
        loop {
            let real = self.translate(dst)?;
            match self.current().mem_cpy_h2d(src, real).await {
                Err(AcError::Unreachable | AcError::Remote(Status::StaleEpoch))
                    if tries < self.max_failovers =>
                {
                    tries += 1;
                    self.recover_tolerant().await?;
                }
                Err(e) => return Err(e),
                Ok(()) => {
                    {
                        // The clone shares the caller's buffer (reference
                        // counted), so retention costs bookkeeping only
                        // until the caller drops its copy.
                        let mut inner = self.inner.borrow_mut();
                        inner.retained_bytes += src.len();
                        inner.log.push(LoggedOp::H2D {
                            virt: dst.0,
                            data: src.clone(),
                        });
                    }
                    self.maybe_checkpoint().await;
                    return Ok(());
                }
            }
        }
    }

    /// Fill device memory with a byte value.
    pub async fn mem_set(&self, ptr: DevicePtr, len: u64, byte: u8) -> Result<(), AcError> {
        self.maybe_migrate().await?;
        let mut tries = 0;
        loop {
            let real = self.translate(ptr)?;
            match self.current().mem_set(real, len, byte).await {
                Err(AcError::Unreachable | AcError::Remote(Status::StaleEpoch))
                    if tries < self.max_failovers =>
                {
                    tries += 1;
                    self.recover_tolerant().await?;
                }
                Err(e) => return Err(e),
                Ok(()) => {
                    self.inner.borrow_mut().log.push(LoggedOp::MemSet {
                        virt: ptr.0,
                        len,
                        byte,
                    });
                    self.maybe_checkpoint().await;
                    return Ok(());
                }
            }
        }
    }

    /// Copy device data back to the host (read-only; not logged).
    pub async fn mem_cpy_d2h(&self, src: DevicePtr, len: u64) -> Result<Payload, AcError> {
        self.maybe_migrate().await?;
        let mut tries = 0;
        loop {
            let real = self.translate(src)?;
            match self.current().mem_cpy_d2h(real, len).await {
                Err(AcError::Unreachable | AcError::Remote(Status::StaleEpoch))
                    if tries < self.max_failovers =>
                {
                    tries += 1;
                    self.recover_tolerant().await?;
                }
                other => return other,
            }
        }
    }

    /// Launch a named kernel and wait for completion; logged for replay.
    pub async fn launch(
        &self,
        name: &str,
        cfg: LaunchConfig,
        args: &[KernelArg],
    ) -> Result<(), AcError> {
        self.maybe_migrate().await?;
        let mut tries = 0;
        loop {
            let real_args = translate_args(&self.inner.borrow().regions, args)?;
            match self.current().launch(name, cfg, &real_args).await {
                Err(AcError::Unreachable | AcError::Remote(Status::StaleEpoch))
                    if tries < self.max_failovers =>
                {
                    tries += 1;
                    self.recover_tolerant().await?;
                }
                Err(e) => return Err(e),
                Ok(()) => {
                    self.inner.borrow_mut().log.push(LoggedOp::Launch {
                        name: name.to_owned(),
                        cfg,
                        args: args.to_vec(),
                    });
                    self.maybe_checkpoint().await;
                    return Ok(());
                }
            }
        }
    }
}
