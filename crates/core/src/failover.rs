//! ARM-driven accelerator failover (§III-A).
//!
//! A [`FailoverSession`] wraps one granted accelerator behind the same
//! `mem_*` / `launch` surface as [`RemoteAccelerator`], but records every
//! state-changing operation in a command log. When the accelerator stops
//! answering ([`AcError::Unreachable`] from the retry plane), the session
//! reports the failure to the ARM, receives a replacement grant in the same
//! round trip, and **replays** the log against the replacement — allocations
//! re-issued, host→device copies re-driven from their retained payloads,
//! kernels re-run in order — so the in-flight job completes with degraded
//! timing instead of failing.
//!
//! Device pointers handed out by the session are *virtual*: the session
//! mints them from its own address space and translates on every call, so
//! pointers held by the application (including interior pointers formed by
//! raw [`DevicePtr::offset`] arithmetic, as the hybrid linear-algebra
//! routines do) survive re-allocation at different physical addresses on the
//! replacement device.
//!
//! Limitations, by design of the prototype: the command log grows with the
//! session (no checkpoint compaction); peer-to-peer transfers are not
//! covered (see [`device_to_device`](crate::api::device_to_device)); and the
//! ARM control plane itself is assumed reliable. Failure detection requires
//! `config.retry` to be set — without it, calls wait forever and failover
//! never triggers.

use std::cell::RefCell;
use std::rc::Rc;

use dacc_arm::client::ArmClient;
use dacc_arm::proto::GrantedAccelerator;
use dacc_arm::state::{AcceleratorId, JobId};
use dacc_fabric::mpi::Endpoint;
use dacc_fabric::payload::Payload;
use dacc_sim::trace::Tracer;
use dacc_vgpu::kernel::{KernelArg, LaunchConfig};
use dacc_vgpu::memory::DevicePtr;

use crate::api::{AcError, FrontendConfig, RemoteAccelerator};
use crate::proto::Status;

/// Base of the session's virtual device address space — far above any
/// physical device address the simulated GPUs hand out, so a virtual
/// pointer accidentally passed to a raw handle fails fast.
const VIRT_BASE: u64 = 1 << 48;
/// Alignment of minted virtual bases.
const VIRT_ALIGN: u64 = 256;

fn round_up(v: u64, align: u64) -> u64 {
    v.div_ceil(align) * align
}

/// One logged state-changing operation (replayed on failover).
#[derive(Clone)]
enum LoggedOp {
    Alloc {
        virt: u64,
        len: u64,
    },
    Free {
        virt: u64,
    },
    H2D {
        virt: u64,
        data: Payload,
    },
    MemSet {
        virt: u64,
        len: u64,
        byte: u8,
    },
    Launch {
        name: String,
        cfg: LaunchConfig,
        args: Vec<KernelArg>,
    },
}

/// A live virtual allocation and its current physical backing.
struct Region {
    virt: u64,
    len: u64,
    real: DevicePtr,
}

fn translate_in(regions: &[Region], p: DevicePtr) -> Result<DevicePtr, AcError> {
    for r in regions {
        if p.0 >= r.virt && p.0 < r.virt + r.len {
            return Ok(DevicePtr(r.real.0 + (p.0 - r.virt)));
        }
    }
    Err(AcError::Local(format!(
        "pointer {:#x} is not inside any live session allocation",
        p.0
    )))
}

fn translate_args(regions: &[Region], args: &[KernelArg]) -> Result<Vec<KernelArg>, AcError> {
    args.iter()
        .map(|a| match a {
            KernelArg::Ptr(p) => translate_in(regions, *p).map(KernelArg::Ptr),
            other => Ok(*other),
        })
        .collect()
}

/// Wrap an ARM grant in a [`RemoteAccelerator`] stamped with the grant's
/// assignment epoch and watching the ARM's eviction channel, so a doomed
/// retry budget is cut short the moment an eviction notice lands.
fn wrap_grant(
    ep: &Endpoint,
    arm: &ArmClient,
    grant: &GrantedAccelerator,
    config: FrontendConfig,
    tracer: &Tracer,
) -> RemoteAccelerator {
    let watch = arm.clone();
    RemoteAccelerator::new(ep.clone(), grant.daemon_rank, config)
        .with_tracer(tracer.clone())
        .with_epoch(grant.epoch)
        .with_eviction_watch(Rc::new(move || watch.eviction_pending()))
}

struct Inner {
    accel: RemoteAccelerator,
    accel_id: AcceleratorId,
    regions: Vec<Region>,
    log: Vec<LoggedOp>,
    next_virt: u64,
    failovers: u32,
}

/// A fault-tolerant session on one accelerator (see module docs).
///
/// Clones share state: all clones observe a failover together.
#[derive(Clone)]
pub struct FailoverSession {
    ep: Endpoint,
    arm: ArmClient,
    job: JobId,
    config: FrontendConfig,
    tracer: Tracer,
    max_failovers: u32,
    inner: Rc<RefCell<Inner>>,
}

impl FailoverSession {
    /// Wrap the granted accelerator in a failover session. `config.retry`
    /// should be set — it is the failure detector.
    pub fn new(
        ep: Endpoint,
        arm: ArmClient,
        job: JobId,
        grant: GrantedAccelerator,
        config: FrontendConfig,
        tracer: Tracer,
    ) -> Self {
        let accel = wrap_grant(&ep, &arm, &grant, config, &tracer);
        FailoverSession {
            ep,
            arm,
            job,
            config,
            tracer,
            max_failovers: 4,
            inner: Rc::new(RefCell::new(Inner {
                accel,
                accel_id: grant.accel,
                regions: Vec::new(),
                log: Vec::new(),
                next_virt: VIRT_BASE,
                failovers: 0,
            })),
        }
    }

    /// Cap on accelerator replacements over the session's lifetime
    /// (default 4).
    pub fn with_max_failovers(mut self, n: u32) -> Self {
        self.max_failovers = n;
        self
    }

    /// The identity of the accelerator currently serving the session.
    pub fn accel_id(&self) -> AcceleratorId {
        self.inner.borrow().accel_id
    }

    /// How many times the session has failed over.
    pub fn failovers(&self) -> u32 {
        self.inner.borrow().failovers
    }

    /// The raw handle onto the current accelerator (e.g. for shutdown).
    /// Pointers minted by this session are virtual and must not be passed
    /// to the raw handle.
    pub fn current_accelerator(&self) -> RemoteAccelerator {
        self.inner.borrow().accel.clone()
    }

    fn current(&self) -> RemoteAccelerator {
        self.inner.borrow().accel.clone()
    }

    fn translate(&self, p: DevicePtr) -> Result<DevicePtr, AcError> {
        translate_in(&self.inner.borrow().regions, p)
    }

    /// Report the current accelerator dead, obtain a replacement in the
    /// same round trip, replay the command log onto it (the reactive
    /// path, driven by an exhausted retry budget).
    async fn failover(&self) -> Result<(), AcError> {
        let old_id = self.inner.borrow().accel_id;
        self.tracer
            .record(self.ep.fabric().handle(), "arm.failover", || {
                format!(
                    "job {}: accel {} unreachable, requesting replacement",
                    self.job.0, old_id.0
                )
            });
        self.ep.fabric().telemetry().count("failover.count", 1);
        let grant = self
            .arm
            .report_failure(self.job, old_id)
            .await
            .map_err(|e| AcError::Local(format!("failover denied: {e}")))?;
        self.migrate_to(grant).await
    }

    /// Apply a pending ARM eviction notice for the current accelerator,
    /// if any: migrate onto the replacement grant carried by the notice
    /// (no `ReportFailure` round trip needed), or — when the notice
    /// carries none, as after a lease expiry — allocate a fresh
    /// accelerator and replay onto that. Returns whether a notice was
    /// applied.
    async fn apply_eviction(&self) -> Result<bool, AcError> {
        self.arm.pump_evictions().await;
        let (accel_id, epoch) = {
            let inner = self.inner.borrow();
            (inner.accel_id, inner.accel.epoch())
        };
        let Some(ev) = self.arm.take_eviction(accel_id) else {
            return Ok(false);
        };
        if ev.epoch != 0 && epoch != 0 && ev.epoch < epoch {
            // A stale notice from an earlier tenure of the same
            // accelerator; the current grant is newer than the eviction.
            return Ok(false);
        }
        self.ep.fabric().telemetry().count("failover.evictions", 1);
        let reason = ev.reason;
        self.tracer
            .record(self.ep.fabric().handle(), "arm.failover", || {
                format!(
                    "job {}: accel {} evicted ({reason:?}), proactive migration",
                    self.job.0, accel_id.0
                )
            });
        match ev.replacement {
            Some(grant) => self.migrate_to(grant).await?,
            None => {
                let mut grants = self.arm.allocate(self.job, 1).await.map_err(|e| {
                    AcError::Local(format!("re-allocation after eviction denied: {e}"))
                })?;
                self.migrate_to(grants.remove(0)).await?;
            }
        }
        Ok(true)
    }

    /// Recover after the current accelerator became unusable (retry
    /// budget exhausted or stale-epoch fencing): prefer a proactive
    /// eviction notice — its replacement grant is already in hand — and
    /// fall back to the reactive [`Self::failover`] report.
    async fn recover(&self) -> Result<(), AcError> {
        if self.apply_eviction().await? {
            return Ok(());
        }
        self.failover().await
    }

    /// [`Self::recover`], tolerating a *recoverable* failure of the
    /// recovery itself: a replacement grant can already be fenced or
    /// unreachable by the time the replay touches it (its lease may have
    /// expired while this client was still timing out on the old
    /// accelerator). Such a failure leaves the session on its old grant
    /// and reports success; the caller's op loop burns one more of its
    /// `max_failovers` tries and recovery runs again, by which point the
    /// ARM has posted a fresher eviction notice or can grant anew.
    async fn recover_tolerant(&self) -> Result<(), AcError> {
        match self.recover().await {
            Err(AcError::Unreachable | AcError::Remote(Status::StaleEpoch)) => Ok(()),
            other => other,
        }
    }

    /// Cheap pre-operation poll: migrate now if the ARM has already
    /// evicted us (drain, quarantine), instead of discovering it through
    /// a fenced or timed-out operation.
    async fn maybe_migrate(&self) -> Result<(), AcError> {
        if self.arm.eviction_pending() {
            self.apply_eviction().await?;
        }
        Ok(())
    }

    /// Replay the command log onto `grant` and swap it in as the
    /// session's current accelerator: the shared tail of reactive
    /// failover and proactive eviction-driven migration.
    async fn migrate_to(&self, grant: GrantedAccelerator) -> Result<(), AcError> {
        let old_id = self.inner.borrow().accel_id;
        let tele = self.ep.fabric().telemetry();
        let job = self.job.0;
        let _replay_span = tele
            .span(self.ep.fabric().handle(), "failover.replay", || {
                format!("job {job}: replacing accel {}", old_id.0)
            })
            .op(job);
        let accel = wrap_grant(&self.ep, &self.arm, &grant, self.config, &self.tracer);
        // Snapshot the log (payload clones are reference-counted), then
        // replay without holding the borrow across awaits.
        let log: Vec<LoggedOp> = self.inner.borrow().log.clone();
        let mut regions: Vec<Region> = Vec::new();
        for op in &log {
            match op {
                LoggedOp::Alloc { virt, len } => {
                    let real = accel.mem_alloc(*len).await?;
                    regions.push(Region {
                        virt: *virt,
                        len: (*len).max(1),
                        real,
                    });
                }
                LoggedOp::Free { virt } => {
                    let real = translate_in(&regions, DevicePtr(*virt))?;
                    accel.mem_free(real).await?;
                    regions.retain(|r| r.virt != *virt);
                }
                LoggedOp::H2D { virt, data } => {
                    let real = translate_in(&regions, DevicePtr(*virt))?;
                    accel.mem_cpy_h2d(data, real).await?;
                }
                LoggedOp::MemSet { virt, len, byte } => {
                    let real = translate_in(&regions, DevicePtr(*virt))?;
                    accel.mem_set(real, *len, *byte).await?;
                }
                LoggedOp::Launch { name, cfg, args } => {
                    let real_args = translate_args(&regions, args)?;
                    accel.launch(name, *cfg, &real_args).await?;
                }
            }
        }
        let replayed = log.len();
        tele.count("failover.replayed_ops", replayed as u64);
        let mut inner = self.inner.borrow_mut();
        inner.accel = accel;
        inner.accel_id = grant.accel;
        inner.regions = regions;
        inner.failovers += 1;
        drop(inner);
        self.tracer
            .record(self.ep.fabric().handle(), "arm.failover", || {
                format!(
                    "job {}: failed over accel {} -> accel {} (rank {}), {replayed} ops replayed",
                    self.job.0, old_id.0, grant.accel.0, grant.daemon_rank.0
                )
            });
        Ok(())
    }

    /// Allocate `len` device bytes; returns a session-virtual pointer.
    pub async fn mem_alloc(&self, len: u64) -> Result<DevicePtr, AcError> {
        self.maybe_migrate().await?;
        let mut tries = 0;
        loop {
            match self.current().mem_alloc(len).await {
                Err(AcError::Unreachable | AcError::Remote(Status::StaleEpoch))
                    if tries < self.max_failovers =>
                {
                    tries += 1;
                    self.recover_tolerant().await?;
                }
                Err(e) => return Err(e),
                Ok(real) => {
                    let mut inner = self.inner.borrow_mut();
                    let virt = inner.next_virt;
                    inner.next_virt += round_up(len.max(1), VIRT_ALIGN);
                    inner.regions.push(Region {
                        virt,
                        len: len.max(1),
                        real,
                    });
                    inner.log.push(LoggedOp::Alloc { virt, len });
                    return Ok(DevicePtr(virt));
                }
            }
        }
    }

    /// Free a session allocation (`ptr` must be the allocation base).
    pub async fn mem_free(&self, ptr: DevicePtr) -> Result<(), AcError> {
        self.maybe_migrate().await?;
        let mut tries = 0;
        loop {
            let real = self.translate(ptr)?;
            match self.current().mem_free(real).await {
                Err(AcError::Unreachable | AcError::Remote(Status::StaleEpoch))
                    if tries < self.max_failovers =>
                {
                    tries += 1;
                    self.recover_tolerant().await?;
                }
                Err(e) => return Err(e),
                Ok(()) => {
                    let mut inner = self.inner.borrow_mut();
                    inner.regions.retain(|r| r.virt != ptr.0);
                    inner.log.push(LoggedOp::Free { virt: ptr.0 });
                    return Ok(());
                }
            }
        }
    }

    /// Copy host data to device memory; the payload is retained for replay.
    pub async fn mem_cpy_h2d(&self, src: &Payload, dst: DevicePtr) -> Result<(), AcError> {
        self.maybe_migrate().await?;
        let mut tries = 0;
        loop {
            let real = self.translate(dst)?;
            match self.current().mem_cpy_h2d(src, real).await {
                Err(AcError::Unreachable | AcError::Remote(Status::StaleEpoch))
                    if tries < self.max_failovers =>
                {
                    tries += 1;
                    self.recover_tolerant().await?;
                }
                Err(e) => return Err(e),
                Ok(()) => {
                    self.inner.borrow_mut().log.push(LoggedOp::H2D {
                        virt: dst.0,
                        data: src.clone(),
                    });
                    return Ok(());
                }
            }
        }
    }

    /// Fill device memory with a byte value.
    pub async fn mem_set(&self, ptr: DevicePtr, len: u64, byte: u8) -> Result<(), AcError> {
        self.maybe_migrate().await?;
        let mut tries = 0;
        loop {
            let real = self.translate(ptr)?;
            match self.current().mem_set(real, len, byte).await {
                Err(AcError::Unreachable | AcError::Remote(Status::StaleEpoch))
                    if tries < self.max_failovers =>
                {
                    tries += 1;
                    self.recover_tolerant().await?;
                }
                Err(e) => return Err(e),
                Ok(()) => {
                    self.inner.borrow_mut().log.push(LoggedOp::MemSet {
                        virt: ptr.0,
                        len,
                        byte,
                    });
                    return Ok(());
                }
            }
        }
    }

    /// Copy device data back to the host (read-only; not logged).
    pub async fn mem_cpy_d2h(&self, src: DevicePtr, len: u64) -> Result<Payload, AcError> {
        self.maybe_migrate().await?;
        let mut tries = 0;
        loop {
            let real = self.translate(src)?;
            match self.current().mem_cpy_d2h(real, len).await {
                Err(AcError::Unreachable | AcError::Remote(Status::StaleEpoch))
                    if tries < self.max_failovers =>
                {
                    tries += 1;
                    self.recover_tolerant().await?;
                }
                other => return other,
            }
        }
    }

    /// Launch a named kernel and wait for completion; logged for replay.
    pub async fn launch(
        &self,
        name: &str,
        cfg: LaunchConfig,
        args: &[KernelArg],
    ) -> Result<(), AcError> {
        self.maybe_migrate().await?;
        let mut tries = 0;
        loop {
            let real_args = translate_args(&self.inner.borrow().regions, args)?;
            match self.current().launch(name, cfg, &real_args).await {
                Err(AcError::Unreachable | AcError::Remote(Status::StaleEpoch))
                    if tries < self.max_failovers =>
                {
                    tries += 1;
                    self.recover_tolerant().await?;
                }
                Err(e) => return Err(e),
                Ok(()) => {
                    self.inner.borrow_mut().log.push(LoggedOp::Launch {
                        name: name.to_owned(),
                        cfg,
                        args: args.to_vec(),
                    });
                    return Ok(());
                }
            }
        }
    }
}
