//! The front-end computation API (§IV, Listing 2).
//!
//! Compute-node processes drive remote accelerators through
//! [`RemoteAccelerator`]: `mem_alloc` / `mem_cpy_h2d` / `mem_cpy_d2h` /
//! `mem_free` plus the three-step kernel interface `kernel_create` /
//! `kernel_set_args` / `kernel_run` — the same shape as the paper's
//! `acMemAlloc(…, ac_handle)` family. [`AcDevice`] unifies a remote
//! accelerator with a node-local GPU behind one interface so the same
//! application code runs in both configurations (that is exactly the
//! "port by substituting calls" exercise of §V.B/§V.C).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use dacc_fabric::codec::EncodeBuf;
use dacc_fabric::mpi::{Endpoint, Rank};
use dacc_fabric::payload::Payload;
use dacc_sim::time::SimDuration;
use dacc_sim::trace::Tracer;
use dacc_telemetry::Telemetry;
use dacc_vgpu::device::{GpuError, HostMemKind, VirtualGpu};
use dacc_vgpu::kernel::{KernelArg, LaunchConfig};
use dacc_vgpu::memory::DevicePtr;

use crate::failover::CheckpointPolicy;
use crate::proto::{
    ac_tags, open_block, seal_block, DecodeError, Request, RequestFrame, Response, Status,
    WireProtocol, CRC_TRAILER_BYTES,
};

/// Transfer-protocol selection policy for one direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransferProtocol {
    /// Single bulk message, then one DMA.
    Naive,
    /// Fixed pipeline block size.
    Pipeline {
        /// Block size in bytes.
        block: u64,
    },
    /// Size-dependent block size (§V.A: 128 KiB below the threshold,
    /// 512 KiB above it on the paper's testbed).
    Adaptive {
        /// Block size for messages below `threshold`.
        small_block: u64,
        /// Block size for messages at or above `threshold`.
        large_block: u64,
        /// Switch-over message size.
        threshold: u64,
    },
}

impl TransferProtocol {
    /// The tuned default for host→device copies: 128 KiB blocks below the
    /// crossover, 512 KiB above it. The crossover is system-dependent and
    /// tuned once per installation (§V.A); on the paper's testbed it fell at
    /// 9 MiB, on this simulated testbed it measures ≈ 4 MiB.
    pub fn h2d_default() -> Self {
        TransferProtocol::Adaptive {
            small_block: 128 << 10,
            large_block: 512 << 10,
            threshold: 4 << 20,
        }
    }

    /// The paper testbed's tuning (crossover at 9 MiB), kept for the figure
    /// harnesses that label a series "pipeline-128-512K" as in Fig. 5.
    pub fn h2d_paper_tuning() -> Self {
        TransferProtocol::Adaptive {
            small_block: 128 << 10,
            large_block: 512 << 10,
            threshold: 9 << 20,
        }
    }

    /// The tuned default for device→host copies (128 KiB everywhere).
    pub fn d2h_default() -> Self {
        TransferProtocol::Pipeline { block: 128 << 10 }
    }

    /// Resolve to the wire protocol for a transfer of `len` bytes.
    pub fn wire(&self, len: u64) -> WireProtocol {
        match *self {
            TransferProtocol::Naive => WireProtocol::Naive,
            TransferProtocol::Pipeline { block } => WireProtocol::Pipeline { block },
            TransferProtocol::Adaptive {
                small_block,
                large_block,
                threshold,
            } => WireProtocol::Pipeline {
                block: if len < threshold {
                    small_block
                } else {
                    large_block
                },
            },
        }
    }
}

/// Per-request fault-tolerance policy (§III-A).
///
/// When set, every request carries an operation id and an attempt number
/// ([`RequestFrame`]); the response is awaited on an attempt-scoped tag with
/// a deadline, and a silent accelerator is retried with exponential backoff.
/// The daemon dedupes replayed requests by operation id, so retries of
/// non-idempotent operations (allocations, kernel launches) are safe: a
/// replay whose original execution succeeded gets the cached response
/// instead of a second execution. Once every attempt has timed out the
/// operation fails with [`AcError::Unreachable`] — the accelerator is
/// presumed dead and should be reported to the ARM for replacement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RetryPolicy {
    /// Per-attempt response deadline. Must comfortably exceed the longest
    /// legitimate operation (large transfer, long kernel) or healthy slow
    /// operations will be spuriously retried.
    pub timeout: SimDuration,
    /// Additional attempts after the first (0 = timeout only, no retry).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles on each further retry.
    pub backoff: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: SimDuration::from_millis(50),
            max_retries: 3,
            backoff: SimDuration::from_micros(500),
        }
    }
}

/// Front-end configuration.
#[derive(Clone, Copy, Debug)]
pub struct FrontendConfig {
    /// Host→device protocol policy.
    pub h2d: TransferProtocol,
    /// Device→host protocol policy.
    pub d2h: TransferProtocol,
    /// Block size for accelerator-to-accelerator transfers.
    pub peer_block: u64,
    /// Timeout/retry policy; `None` (the default) waits forever, exactly
    /// the pre-fault-tolerance behavior.
    pub retry: Option<RetryPolicy>,
    /// Use the fused [`Request::Launch`] (one round trip) for
    /// [`RemoteAccelerator::launch`] instead of the legacy
    /// create → set-args → run sequence (three round trips). On by
    /// default; the A2-style ablations turn it off to measure the
    /// paper-era behaviour.
    pub fused_launch: bool,
    /// Automatic checkpoint policy for resilient sessions: snapshot live
    /// device state and truncate the command log whenever the logged tail
    /// grows past the policy's thresholds, bounding recovery time by the
    /// tail instead of the job's whole history. `None` (the default) keeps
    /// the full log — the pre-checkpoint behaviour.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Ask daemons to coalesce small control messages (responses, stream
    /// acks) destined for this front-end into
    /// [`ControlBatch`](crate::proto::ControlBatch) frames when several
    /// are pending in the same scheduling window. Transparent to the API —
    /// the fabric unbundles entries back onto their own tags — but it
    /// changes *message counts*, so it is off by default to keep archived
    /// virtual-time results pinned.
    pub ctrl_batch: bool,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            h2d: TransferProtocol::h2d_default(),
            d2h: TransferProtocol::d2h_default(),
            peer_block: 512 << 10,
            retry: None,
            fused_launch: true,
            checkpoint: None,
            ctrl_batch: false,
        }
    }
}

/// Errors surfaced by the computation API.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AcError {
    /// The daemon reported a failure.
    Remote(Status),
    /// A response could not be decoded.
    Protocol,
    /// A local GPU operation failed (local-device configurations).
    Local(String),
    /// The accelerator did not answer within the retry budget and is
    /// presumed dead (report it to the ARM and fail over).
    Unreachable,
}

impl std::fmt::Display for AcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AcError::Remote(s) => write!(f, "remote accelerator error: {s:?}"),
            AcError::Protocol => write!(f, "middleware protocol error"),
            AcError::Local(e) => write!(f, "local accelerator error: {e}"),
            AcError::Unreachable => write!(f, "accelerator unreachable (retry budget exhausted)"),
        }
    }
}
impl std::error::Error for AcError {}

impl From<GpuError> for AcError {
    fn from(e: GpuError) -> Self {
        AcError::Local(e.to_string())
    }
}

fn check(resp: Response) -> Result<u64, AcError> {
    match resp.status {
        Status::Ok => Ok(resp.value),
        s => Err(AcError::Remote(s)),
    }
}

/// A handle onto one exclusively assigned, network-attached accelerator —
/// the paper's `ac_handle`.
#[derive(Clone)]
pub struct RemoteAccelerator {
    pub(crate) ep: Endpoint,
    pub(crate) daemon: Rank,
    pub(crate) config: FrontendConfig,
    /// Monotonic operation-id counter, shared by clones of this handle so
    /// the daemon's dedupe cache sees one id sequence per front-end.
    next_op: Rc<Cell<u64>>,
    pub(crate) tracer: Tracer,
    /// Assignment epoch from the ARM grant, stamped into every framed
    /// request so the daemon can fence stale holders. `0` = unstamped.
    pub(crate) epoch: u64,
    /// Health-plane hook: when it reports `true` after a timed-out
    /// attempt, the remaining retry budget is abandoned immediately — the
    /// ARM has already evicted this assignment, so further retries can
    /// only waste virtual time.
    pub(crate) eviction_watch: Option<Rc<dyn Fn() -> bool>>,
    /// Per-handle encode arena: request headers for this handle (and its
    /// clones — they share one front-end session) are serialised into a
    /// single reusable buffer instead of a fresh `Vec` per message.
    pub(crate) enc: Rc<RefCell<EncodeBuf>>,
}

impl RemoteAccelerator {
    /// Bind a front-end endpoint to the daemon at `daemon`.
    pub fn new(ep: Endpoint, daemon: Rank, config: FrontendConfig) -> Self {
        RemoteAccelerator {
            ep,
            daemon,
            config,
            next_op: Rc::new(Cell::new(0)),
            tracer: Tracer::disabled(),
            epoch: 0,
            eviction_watch: None,
            enc: Rc::new(RefCell::new(EncodeBuf::new())),
        }
    }

    /// Attach a tracer; `retry.*` events are recorded into it.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Stamp this handle's framed requests with an ARM assignment epoch.
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// The assignment epoch stamped into framed requests (0 = unstamped).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Adopt a new assignment epoch in place. Time-sliced oversubscription
    /// uses this: when the ARM rotates this job back onto a shared
    /// accelerator, the `Slice` event carries a fresh grant whose epoch
    /// the handle must stamp from then on (the previous one is fenced).
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Install an eviction watch (typically
    /// `ArmClient::eviction_pending`): polled after each timed-out
    /// attempt, and a `true` answer aborts the remaining retry budget with
    /// [`AcError::Unreachable`] so failover can start early.
    pub fn with_eviction_watch(mut self, watch: Rc<dyn Fn() -> bool>) -> Self {
        self.eviction_watch = Some(watch);
        self
    }

    /// True when the installed eviction watch reports a pending notice.
    fn evicted(&self) -> bool {
        self.eviction_watch.as_ref().is_some_and(|w| w())
    }

    /// Consult the eviction watch after a timed-out attempt; returns true
    /// (and traces) when the retry loop should give up early.
    fn abort_retries(&self, op_id: u64) -> bool {
        if !self.evicted() {
            return false;
        }
        self.trace("retry.evicted", || {
            format!("op {op_id}: eviction notice pending, abandoning retry budget")
        });
        self.telemetry().count("retry.evicted", 1);
        true
    }

    pub(crate) fn alloc_op(&self) -> u64 {
        let id = self.next_op.get();
        self.next_op.set(id + 1);
        id
    }

    pub(crate) fn trace(&self, category: &'static str, label: impl FnOnce() -> String) {
        self.tracer
            .record(self.ep.fabric().handle(), category, label);
    }

    /// The telemetry handle attached to this accelerator's fabric.
    pub fn telemetry(&self) -> Telemetry {
        self.ep.fabric().telemetry()
    }

    /// The daemon's fabric rank.
    pub fn daemon_rank(&self) -> Rank {
        self.daemon
    }

    /// Front-end configuration in force.
    pub fn config(&self) -> FrontendConfig {
        self.config
    }

    /// The front-end endpoint.
    pub fn endpoint(&self) -> &Endpoint {
        &self.ep
    }

    /// Serialise a bare request through this handle's encode arena.
    fn encode_req(&self, req: &Request) -> Payload {
        let bytes = req.encode_into(&mut self.enc.borrow_mut());
        self.telemetry()
            .count("wire.encode_bytes", bytes.len() as u64);
        Payload::from_bytes(bytes)
    }

    /// Serialise a framed request through this handle's encode arena.
    fn encode_frame(&self, frame: &RequestFrame) -> Payload {
        let bytes = frame.encode_into(&mut self.enc.borrow_mut());
        self.telemetry()
            .count("wire.encode_bytes", bytes.len() as u64);
        Payload::from_bytes(bytes)
    }

    /// Seal a data block, counting the bytes run through the CRC engine.
    pub(crate) fn seal_counted(&self, block: &Payload) -> Payload {
        self.telemetry()
            .count("wire.crc_bytes", block.len() + CRC_TRAILER_BYTES);
        seal_block(block)
    }

    /// Open a sealed block, counting the bytes run through the CRC engine.
    fn open_counted(&self, sealed: &Payload) -> Result<Payload, DecodeError> {
        self.telemetry().count("wire.crc_bytes", sealed.len());
        open_block(sealed)
    }

    async fn call(&self, req: Request) -> Result<Response, AcError> {
        let tele = self.telemetry();
        let _span = tele.span(self.ep.fabric().handle(), "api.call", || {
            format!("{} -> {}", crate::daemon::request_kind(&req), self.daemon)
        });
        match self.config.retry {
            None => {
                self.ep
                    .send(self.daemon, ac_tags::REQUEST, self.encode_req(&req))
                    .await;
                self.recv_response().await
            }
            Some(policy) => self.call_retry(req, policy).await,
        }
    }

    async fn recv_response(&self) -> Result<Response, AcError> {
        let env = self
            .ep
            .recv(Some(self.daemon), Some(ac_tags::RESPONSE))
            .await;
        env.payload
            .bytes()
            .and_then(|b| Response::decode(b).ok())
            .ok_or(AcError::Protocol)
    }

    /// Send one framed attempt of `req` on the request tag.
    async fn send_attempt(&self, op_id: u64, attempt: u32, req: &Request) {
        let frame = RequestFrame {
            op_id,
            attempt,
            epoch: self.epoch,
            req: req.clone(),
        };
        self.ep
            .send(self.daemon, ac_tags::REQUEST, self.encode_frame(&frame))
            .await;
    }

    /// Await the response to attempt `attempt` of operation `op_id`.
    ///
    /// A response that fails its CRC (damaged in flight) is treated
    /// exactly like a lost response — `None` — so the retry loop replays
    /// the operation instead of surfacing a protocol error: end-to-end
    /// integrity is healed by retransmission, never trusted.
    async fn recv_attempt(
        &self,
        op_id: u64,
        attempt: u32,
        timeout: SimDuration,
    ) -> Option<Response> {
        let env = self
            .ep
            .recv_timeout(
                Some(self.daemon),
                Some(ac_tags::response_tag(op_id, attempt)),
                timeout,
            )
            .await?;
        match env.payload.bytes().and_then(|b| Response::decode(b).ok()) {
            Some(resp) => Some(resp),
            None => {
                self.trace("retry.corrupt", || {
                    format!("op {op_id} attempt {attempt}: response failed CRC, treating as lost")
                });
                self.telemetry().count("retry.corrupt_responses", 1);
                None
            }
        }
    }

    /// Backoff before retry number `attempt` (1-based), with tracing.
    async fn backoff(&self, policy: RetryPolicy, op_id: u64, attempt: u32) {
        self.trace("retry.attempt", || {
            format!("op {op_id} attempt {attempt} after timeout")
        });
        let tele = self.telemetry();
        tele.count("retry.attempts", 1);
        tele.instant(self.ep.fabric().handle(), "retry.attempt", || {
            format!("op {op_id} attempt {attempt} after timeout")
        });
        let pause = policy.backoff.saturating_mul(1u64 << (attempt - 1).min(20));
        let _span = tele
            .span(self.ep.fabric().handle(), "retry.backoff", || {
                format!("op {op_id} attempt {attempt}")
            })
            .op(op_id);
        self.ep.fabric().handle().delay(pause).await;
    }

    /// Framed request/response with deadline, retry, and backoff.
    async fn call_retry(&self, req: Request, policy: RetryPolicy) -> Result<Response, AcError> {
        let op_id = self.alloc_op();
        for attempt in 0..=policy.max_retries {
            if attempt > 0 {
                self.backoff(policy, op_id, attempt).await;
            }
            self.send_attempt(op_id, attempt, &req).await;
            match self.recv_attempt(op_id, attempt, policy.timeout).await {
                // A corrupt data phase is healed by replaying the whole
                // operation, exactly like a lost one.
                Some(resp) if resp.status == Status::Corrupt => {
                    self.trace("retry.corrupt", || {
                        format!("op {op_id} attempt {attempt}: daemon saw corrupt data")
                    });
                    self.telemetry().count("retry.corrupt_data", 1);
                }
                Some(resp) => return Ok(resp),
                None => {
                    self.trace("retry.timeout", || {
                        format!("op {op_id} attempt {attempt} timed out")
                    });
                    self.telemetry().count("retry.timeouts", 1);
                    if self.abort_retries(op_id) {
                        break;
                    }
                }
            }
        }
        self.trace("retry.gave_up", || {
            format!(
                "op {op_id} unreachable after {} attempts",
                policy.max_retries + 1
            )
        });
        let tele = self.telemetry();
        tele.count("retry.gave_up", 1);
        tele.instant(self.ep.fabric().handle(), "retry.gave_up", || {
            format!("op {op_id}")
        });
        Err(AcError::Unreachable)
    }

    /// `acMemAlloc`: allocate `len` bytes on the accelerator.
    pub async fn mem_alloc(&self, len: u64) -> Result<DevicePtr, AcError> {
        let resp = self.call(Request::MemAlloc { len }).await?;
        check(resp).map(DevicePtr)
    }

    /// `acMemFree`: release a device allocation.
    pub async fn mem_free(&self, ptr: DevicePtr) -> Result<(), AcError> {
        check(self.call(Request::MemFree { ptr }).await?).map(|_| ())
    }

    /// `acMemSet`: fill `len` device bytes at `ptr` with `byte`.
    pub async fn mem_set(&self, ptr: DevicePtr, len: u64, byte: u8) -> Result<(), AcError> {
        check(self.call(Request::MemSet { ptr, len, byte }).await?).map(|_| ())
    }

    /// `acMemCpy` host→device: copy `src` to device memory at `dst`.
    pub async fn mem_cpy_h2d(&self, src: &Payload, dst: DevicePtr) -> Result<(), AcError> {
        let len = src.len();
        let _span = self
            .telemetry()
            .span(self.ep.fabric().handle(), "api.h2d", || {
                format!("{len}B -> {} @{}", self.daemon, dst.0)
            })
            .bytes(len);
        match self.config.retry {
            None => self.mem_cpy_h2d_bare(src, dst).await,
            Some(policy) => self.mem_cpy_h2d_retry(src, dst, policy).await,
        }
    }

    async fn mem_cpy_h2d_bare(&self, src: &Payload, dst: DevicePtr) -> Result<(), AcError> {
        let len = src.len();
        let protocol = self.config.h2d.wire(len);
        self.ep
            .send(
                self.daemon,
                ac_tags::REQUEST,
                self.encode_req(&Request::MemCpyH2D { dst, len, protocol }),
            )
            .await;
        // Stream the data messages: all posted at once (MPI_Isend loop);
        // rendezvous pacing against the daemon's receive loop emerges from
        // the fabric model.
        let block = protocol.block_size(len);
        let mut sends = Vec::new();
        let mut offset = 0u64;
        while offset < len {
            let bs = block.min(len - offset);
            sends.push(self.ep.isend(
                self.daemon,
                ac_tags::DATA,
                self.seal_counted(&src.slice(offset, bs)),
            ));
            offset += bs;
        }
        let resp = self.recv_response().await?;
        for s in sends {
            s.await;
        }
        check(resp).map(|_| ())
    }

    /// Host→device copy under a [`RetryPolicy`]: each attempt sends the
    /// framed request, then paces the data blocks sequentially with
    /// [`Endpoint::send_timeout`] on an attempt-scoped tag so a dead
    /// receiver cannot wedge the sender. A lost block, a daemon-reported
    /// `Status::Timeout`, or a missing response retries the whole copy —
    /// the daemon re-executes it (same bytes, same destination), so the
    /// replay is idempotent.
    async fn mem_cpy_h2d_retry(
        &self,
        src: &Payload,
        dst: DevicePtr,
        policy: RetryPolicy,
    ) -> Result<(), AcError> {
        let len = src.len();
        let protocol = self.config.h2d.wire(len);
        let block = protocol.block_size(len);
        let op_id = self.alloc_op();
        let req = Request::MemCpyH2D { dst, len, protocol };
        for attempt in 0..=policy.max_retries {
            if attempt > 0 {
                self.backoff(policy, op_id, attempt).await;
            }
            self.send_attempt(op_id, attempt, &req).await;
            let dtag = ac_tags::data_tag(op_id, attempt);
            let mut delivered = true;
            let mut offset = 0u64;
            while offset < len {
                let bs = block.min(len - offset);
                if !self
                    .ep
                    .send_timeout(
                        self.daemon,
                        dtag,
                        self.seal_counted(&src.slice(offset, bs)),
                        policy.timeout,
                    )
                    .await
                {
                    delivered = false;
                    break;
                }
                offset += bs;
            }
            // Collect the response even after a lost block — the daemon's
            // own data timeout produces a `Status::Timeout` answer.
            match self.recv_attempt(op_id, attempt, policy.timeout).await {
                Some(resp) => {
                    match resp.status {
                        Status::Ok if delivered => return Ok(()),
                        // Timeout (either side lost data) or a corrupt
                        // block caught by the daemon's CRC check: retry
                        // the copy.
                        Status::Ok | Status::Timeout | Status::Corrupt => {
                            self.trace("retry.timeout", || {
                                format!("op {op_id} h2d attempt {attempt}: data phase lost")
                            });
                            self.telemetry().count("retry.timeouts", 1);
                        }
                        // Hard daemon errors are not retryable.
                        _ => return check(resp).map(|_| ()),
                    }
                }
                None => {
                    self.trace("retry.timeout", || {
                        format!("op {op_id} h2d attempt {attempt} timed out")
                    });
                    self.telemetry().count("retry.timeouts", 1);
                    if self.abort_retries(op_id) {
                        break;
                    }
                }
            }
        }
        self.trace("retry.gave_up", || {
            format!(
                "op {op_id} h2d unreachable after {} attempts",
                policy.max_retries + 1
            )
        });
        self.telemetry().count("retry.gave_up", 1);
        Err(AcError::Unreachable)
    }

    /// `acMemCpy` device→host: copy `len` device bytes at `src` back.
    pub async fn mem_cpy_d2h(&self, src: DevicePtr, len: u64) -> Result<Payload, AcError> {
        let _span = self
            .telemetry()
            .span(self.ep.fabric().handle(), "api.d2h", || {
                format!("{len}B <- {} @{}", self.daemon, src.0)
            })
            .bytes(len);
        match self.config.retry {
            None => self.mem_cpy_d2h_bare(src, len).await,
            Some(policy) => self.mem_cpy_d2h_retry(src, len, policy).await,
        }
    }

    async fn mem_cpy_d2h_bare(&self, src: DevicePtr, len: u64) -> Result<Payload, AcError> {
        let protocol = self.config.d2h.wire(len);
        let resp = self.call(Request::MemCpyD2H { src, len, protocol }).await?;
        check(resp)?;
        let nblocks = protocol.block_count(len);
        let mut blocks = Vec::with_capacity(nblocks as usize);
        for _ in 0..nblocks {
            let env = self.ep.recv(Some(self.daemon), Some(ac_tags::DATA)).await;
            // Without a retry policy there is no retransmit path, so a
            // damaged block is a hard error rather than silent bad data.
            blocks.push(
                self.open_counted(&env.payload)
                    .map_err(|_| AcError::Remote(Status::Corrupt))?,
            );
        }
        Ok(Payload::concat(&blocks))
    }

    /// Device→host copy under a [`RetryPolicy`]: the framed request's
    /// response and every data block are awaited with a deadline; a lost
    /// block retries the whole copy on a fresh attempt tag (stale blocks
    /// from the abandoned attempt are ignored by tag).
    async fn mem_cpy_d2h_retry(
        &self,
        src: DevicePtr,
        len: u64,
        policy: RetryPolicy,
    ) -> Result<Payload, AcError> {
        let protocol = self.config.d2h.wire(len);
        let nblocks = protocol.block_count(len);
        let op_id = self.alloc_op();
        let req = Request::MemCpyD2H { src, len, protocol };
        for attempt in 0..=policy.max_retries {
            if attempt > 0 {
                self.backoff(policy, op_id, attempt).await;
            }
            self.send_attempt(op_id, attempt, &req).await;
            match self.recv_attempt(op_id, attempt, policy.timeout).await {
                Some(resp) => check(resp)?,
                None => {
                    self.trace("retry.timeout", || {
                        format!("op {op_id} d2h attempt {attempt} timed out")
                    });
                    self.telemetry().count("retry.timeouts", 1);
                    if self.abort_retries(op_id) {
                        break;
                    }
                    continue;
                }
            };
            let dtag = ac_tags::data_tag(op_id, attempt);
            let mut blocks = Vec::with_capacity(nblocks as usize);
            for _ in 0..nblocks {
                match self
                    .ep
                    .recv_timeout(Some(self.daemon), Some(dtag), policy.timeout)
                    .await
                {
                    // A block that fails its CRC is treated like a lost
                    // block: the incomplete attempt is abandoned and the
                    // whole copy is retried on a fresh attempt tag.
                    Some(env) => match self.open_counted(&env.payload) {
                        Ok(data) => blocks.push(data),
                        Err(_) => {
                            self.trace("retry.corrupt", || {
                                format!("op {op_id} d2h attempt {attempt}: block failed CRC")
                            });
                            self.telemetry().count("retry.corrupt_blocks", 1);
                            break;
                        }
                    },
                    None => break,
                }
            }
            if blocks.len() == nblocks as usize {
                return Ok(Payload::concat(&blocks));
            }
            self.trace("retry.timeout", || {
                format!(
                    "op {op_id} d2h attempt {attempt}: {}/{} blocks",
                    blocks.len(),
                    nblocks
                )
            });
            self.telemetry().count("retry.timeouts", 1);
            if self.abort_retries(op_id) {
                break;
            }
        }
        self.trace("retry.gave_up", || {
            format!(
                "op {op_id} d2h unreachable after {} attempts",
                policy.max_retries + 1
            )
        });
        self.telemetry().count("retry.gave_up", 1);
        Err(AcError::Unreachable)
    }

    /// Pipeline block size for checkpoint traffic under `policy` (snapshot
    /// and restore streams are always pipelined — a naive policy falls back
    /// to 128 KiB blocks).
    fn ckpt_block(&self, policy: TransferProtocol, len: u64) -> u64 {
        match policy.wire(len) {
            WireProtocol::Pipeline { block } => block,
            WireProtocol::Naive => 128 << 10,
        }
    }

    /// Serialize the given live device regions into host payloads — the
    /// device side of a checkpoint. Each `(ptr, len)` region streams back
    /// over the pipelined block protocol (multi-region
    /// [`Self::mem_cpy_d2h`]); the returned payloads are in region order.
    pub async fn snapshot(&self, regions: &[(DevicePtr, u64)]) -> Result<Vec<Payload>, AcError> {
        let total: u64 = regions.iter().map(|(_, l)| *l).sum();
        let _span = self
            .telemetry()
            .span(self.ep.fabric().handle(), "api.snapshot", || {
                format!("{} regions, {total}B <- {}", regions.len(), self.daemon)
            })
            .bytes(total);
        let block = self.ckpt_block(self.config.d2h, total);
        let req = Request::Snapshot {
            regions: regions.iter().map(|(p, l)| (p.0, *l)).collect(),
            block,
        };
        match self.config.retry {
            None => self.snapshot_bare(regions, block, req).await,
            Some(policy) => self.snapshot_retry(regions, block, req, policy).await,
        }
    }

    async fn snapshot_bare(
        &self,
        regions: &[(DevicePtr, u64)],
        block: u64,
        req: Request,
    ) -> Result<Vec<Payload>, AcError> {
        let protocol = WireProtocol::Pipeline { block };
        check(self.call(req).await?)?;
        let mut out = Vec::with_capacity(regions.len());
        for (_, len) in regions {
            let nblocks = protocol.block_count(*len);
            let mut blocks = Vec::with_capacity(nblocks as usize);
            for _ in 0..nblocks {
                let env = self.ep.recv(Some(self.daemon), Some(ac_tags::DATA)).await;
                blocks.push(
                    self.open_counted(&env.payload)
                        .map_err(|_| AcError::Remote(Status::Corrupt))?,
                );
            }
            out.push(Payload::concat(&blocks));
        }
        Ok(out)
    }

    async fn snapshot_retry(
        &self,
        regions: &[(DevicePtr, u64)],
        block: u64,
        req: Request,
        policy: RetryPolicy,
    ) -> Result<Vec<Payload>, AcError> {
        let protocol = WireProtocol::Pipeline { block };
        let op_id = self.alloc_op();
        'attempts: for attempt in 0..=policy.max_retries {
            if attempt > 0 {
                self.backoff(policy, op_id, attempt).await;
            }
            self.send_attempt(op_id, attempt, &req).await;
            match self.recv_attempt(op_id, attempt, policy.timeout).await {
                Some(resp) => check(resp)?,
                None => {
                    self.trace("retry.timeout", || {
                        format!("op {op_id} snapshot attempt {attempt} timed out")
                    });
                    self.telemetry().count("retry.timeouts", 1);
                    if self.abort_retries(op_id) {
                        break;
                    }
                    continue;
                }
            };
            let dtag = ac_tags::data_tag(op_id, attempt);
            let mut out = Vec::with_capacity(regions.len());
            for (_, len) in regions {
                let nblocks = protocol.block_count(*len);
                let mut blocks = Vec::with_capacity(nblocks as usize);
                for _ in 0..nblocks {
                    // A lost or CRC-damaged block abandons the attempt and
                    // replays the whole snapshot on a fresh attempt tag.
                    let Some(env) = self
                        .ep
                        .recv_timeout(Some(self.daemon), Some(dtag), policy.timeout)
                        .await
                    else {
                        self.trace("retry.timeout", || {
                            format!("op {op_id} snapshot attempt {attempt}: block lost")
                        });
                        self.telemetry().count("retry.timeouts", 1);
                        if self.abort_retries(op_id) {
                            break 'attempts;
                        }
                        continue 'attempts;
                    };
                    match self.open_counted(&env.payload) {
                        Ok(data) => blocks.push(data),
                        Err(_) => {
                            self.trace("retry.corrupt", || {
                                format!("op {op_id} snapshot attempt {attempt}: block failed CRC")
                            });
                            self.telemetry().count("retry.corrupt_blocks", 1);
                            continue 'attempts;
                        }
                    }
                }
                out.push(Payload::concat(&blocks));
            }
            return Ok(out);
        }
        self.trace("retry.gave_up", || {
            format!(
                "op {op_id} snapshot unreachable after {} attempts",
                policy.max_retries + 1
            )
        });
        self.telemetry().count("retry.gave_up", 1);
        Err(AcError::Unreachable)
    }

    /// Deserialize previously snapshotted payloads back into device memory
    /// at the given regions — the device side of a checkpoint restore.
    /// `data[i]` must be exactly `regions[i].1` bytes.
    pub async fn restore(
        &self,
        regions: &[(DevicePtr, u64)],
        data: &[Payload],
    ) -> Result<(), AcError> {
        assert_eq!(regions.len(), data.len(), "one payload per restored region");
        let total: u64 = regions.iter().map(|(_, l)| *l).sum();
        let _span = self
            .telemetry()
            .span(self.ep.fabric().handle(), "api.restore", || {
                format!("{} regions, {total}B -> {}", regions.len(), self.daemon)
            })
            .bytes(total);
        let block = self.ckpt_block(self.config.h2d, total);
        let req = Request::Restore {
            regions: regions.iter().map(|(p, l)| (p.0, *l)).collect(),
            block,
        };
        match self.config.retry {
            None => self.restore_bare(data, block, req).await,
            Some(policy) => self.restore_retry(data, block, req, policy).await,
        }
    }

    async fn restore_bare(
        &self,
        data: &[Payload],
        block: u64,
        req: Request,
    ) -> Result<(), AcError> {
        self.ep
            .send(self.daemon, ac_tags::REQUEST, self.encode_req(&req))
            .await;
        let mut sends = Vec::new();
        for payload in data {
            let len = payload.len();
            let mut offset = 0u64;
            while offset < len {
                let bs = block.min(len - offset);
                sends.push(self.ep.isend(
                    self.daemon,
                    ac_tags::DATA,
                    self.seal_counted(&payload.slice(offset, bs)),
                ));
                offset += bs;
            }
        }
        let resp = self.recv_response().await?;
        for s in sends {
            s.await;
        }
        check(resp).map(|_| ())
    }

    async fn restore_retry(
        &self,
        data: &[Payload],
        block: u64,
        req: Request,
        policy: RetryPolicy,
    ) -> Result<(), AcError> {
        let op_id = self.alloc_op();
        for attempt in 0..=policy.max_retries {
            if attempt > 0 {
                self.backoff(policy, op_id, attempt).await;
            }
            self.send_attempt(op_id, attempt, &req).await;
            let dtag = ac_tags::data_tag(op_id, attempt);
            let mut delivered = true;
            'send: for payload in data {
                let len = payload.len();
                let mut offset = 0u64;
                while offset < len {
                    let bs = block.min(len - offset);
                    if !self
                        .ep
                        .send_timeout(
                            self.daemon,
                            dtag,
                            self.seal_counted(&payload.slice(offset, bs)),
                            policy.timeout,
                        )
                        .await
                    {
                        delivered = false;
                        break 'send;
                    }
                    offset += bs;
                }
            }
            match self.recv_attempt(op_id, attempt, policy.timeout).await {
                Some(resp) => match resp.status {
                    Status::Ok if delivered => return Ok(()),
                    Status::Ok | Status::Timeout | Status::Corrupt => {
                        self.trace("retry.timeout", || {
                            format!("op {op_id} restore attempt {attempt}: data phase lost")
                        });
                        self.telemetry().count("retry.timeouts", 1);
                    }
                    _ => return check(resp).map(|_| ()),
                },
                None => {
                    self.trace("retry.timeout", || {
                        format!("op {op_id} restore attempt {attempt} timed out")
                    });
                    self.telemetry().count("retry.timeouts", 1);
                    if self.abort_retries(op_id) {
                        break;
                    }
                }
            }
        }
        self.trace("retry.gave_up", || {
            format!(
                "op {op_id} restore unreachable after {} attempts",
                policy.max_retries + 1
            )
        });
        self.telemetry().count("retry.gave_up", 1);
        Err(AcError::Unreachable)
    }

    /// `acKernelCreate`: bind this session to kernel `name`.
    pub async fn kernel_create(&self, name: &str) -> Result<(), AcError> {
        check(
            self.call(Request::KernelCreate {
                name: name.to_owned(),
            })
            .await?,
        )
        .map(|_| ())
    }

    /// `acKernelSetArgs`: set the bound kernel's arguments.
    pub async fn kernel_set_args(&self, args: &[KernelArg]) -> Result<(), AcError> {
        check(
            self.call(Request::KernelSetArgs {
                args: args.to_vec(),
            })
            .await?,
        )
        .map(|_| ())
    }

    /// `acKernelRun`: launch the bound kernel; resolves at completion.
    pub async fn kernel_run(&self, cfg: LaunchConfig) -> Result<(), AcError> {
        check(
            self.call(Request::KernelRun {
                grid: cfg.grid,
                block: cfg.block,
            })
            .await?,
        )
        .map(|_| ())
    }

    /// Convenience kernel launch. With
    /// [`FrontendConfig::fused_launch`] (the default) this is a single
    /// fused `Launch` round trip; otherwise it is the paper's three-step
    /// create → set-args → run sequence of Listing 2
    /// ([`Self::launch_legacy`]).
    pub async fn launch(
        &self,
        name: &str,
        cfg: LaunchConfig,
        args: &[KernelArg],
    ) -> Result<(), AcError> {
        if !self.config.fused_launch {
            return self.launch_legacy(name, cfg, args).await;
        }
        check(
            self.call(Request::Launch {
                name: name.to_owned(),
                args: args.to_vec(),
                grid: cfg.grid,
                block: cfg.block,
            })
            .await?,
        )
        .map(|_| ())
    }

    /// The paper-era three-round-trip kernel launch of Listing 2, kept for
    /// the A2-style ablations that measure per-call latency.
    pub async fn launch_legacy(
        &self,
        name: &str,
        cfg: LaunchConfig,
        args: &[KernelArg],
    ) -> Result<(), AcError> {
        self.kernel_create(name).await?;
        self.kernel_set_args(args).await?;
        self.kernel_run(cfg).await
    }

    /// Liveness probe with a deadline (§III-A fault tolerance): `true` if
    /// the daemon answers within `timeout`. After a timeout the handle must
    /// not be reused — a late response would desynchronize the
    /// request/response pairing; report the accelerator broken to the ARM
    /// and acquire a replacement.
    pub async fn ping(&self, timeout: dacc_sim::time::SimDuration) -> bool {
        self.ep
            .send(
                self.daemon,
                ac_tags::REQUEST,
                self.encode_req(&Request::Ping),
            )
            .await;
        self.ep
            .recv_timeout(Some(self.daemon), Some(ac_tags::RESPONSE), timeout)
            .await
            .is_some()
    }

    /// Stop this accelerator's daemon (simulation tear-down).
    pub async fn shutdown(&self) -> Result<(), AcError> {
        check(self.call(Request::Shutdown).await?).map(|_| ())
    }
}

/// Direct accelerator-to-accelerator transfer (§III-C): move `len` bytes
/// from `src_ptr` on `src` to `dst_ptr` on `dst` without staging the data
/// through the compute node. The two daemons stream blocks directly.
///
/// Peer transfers are **not** covered by [`RetryPolicy`]: a replay would
/// have to coordinate two daemons' data cursors, which the middleware does
/// not attempt. Under fault injection, route peer traffic around injected
/// faults (or fall back to staging through the host).
pub async fn device_to_device(
    src: &RemoteAccelerator,
    src_ptr: DevicePtr,
    dst: &RemoteAccelerator,
    dst_ptr: DevicePtr,
    len: u64,
) -> Result<(), AcError> {
    let block = src.config.peer_block;
    // Post the receive side first so the sender's blocks always find a
    // matching operation, then the send side; await both responses.
    let recv_req = Request::PeerRecv {
        dst: dst_ptr,
        len,
        from: src.daemon.0 as u32,
        block,
    };
    let send_req = Request::PeerSend {
        src: src_ptr,
        len,
        peer: dst.daemon.0 as u32,
        block,
    };
    dst.ep
        .send(dst.daemon, ac_tags::REQUEST, dst.encode_req(&recv_req))
        .await;
    src.ep
        .send(src.daemon, ac_tags::REQUEST, src.encode_req(&send_req))
        .await;
    let r1 = dst.recv_response().await?;
    let r2 = src.recv_response().await?;
    check(r1)?;
    check(r2)?;
    Ok(())
}

/// One accelerator, local or remote, behind a single interface.
///
/// Porting MAGMA or MP2C to the dynamic architecture is the act of swapping
/// `Local` for `Remote` — the call sites are identical, which is the paper's
/// transparency claim.
#[derive(Clone)]
pub enum AcDevice {
    /// A node-local, PCIe-attached GPU (the classic static architecture).
    Local {
        /// The device.
        gpu: VirtualGpu,
        /// Host buffer kind used for copies.
        host_mem: HostMemKind,
    },
    /// A network-attached accelerator reached through the middleware.
    Remote(RemoteAccelerator),
    /// A network-attached accelerator behind the failover plane: on
    /// accelerator death the session acquires an ARM-granted replacement
    /// and replays its command log (§III-A).
    Resilient(crate::failover::FailoverSession),
}

impl AcDevice {
    /// Allocate device memory.
    pub async fn mem_alloc(&self, len: u64) -> Result<DevicePtr, AcError> {
        match self {
            AcDevice::Local { gpu, .. } => Ok(gpu.alloc(len).await?),
            AcDevice::Remote(r) => r.mem_alloc(len).await,
            AcDevice::Resilient(s) => s.mem_alloc(len).await,
        }
    }

    /// Free device memory.
    pub async fn mem_free(&self, ptr: DevicePtr) -> Result<(), AcError> {
        match self {
            AcDevice::Local { gpu, .. } => Ok(gpu.free(ptr).await?),
            AcDevice::Remote(r) => r.mem_free(ptr).await,
            AcDevice::Resilient(s) => s.mem_free(ptr).await,
        }
    }

    /// Copy host data to device memory.
    pub async fn mem_cpy_h2d(&self, src: &Payload, dst: DevicePtr) -> Result<(), AcError> {
        match self {
            AcDevice::Local { gpu, host_mem } => Ok(gpu.memcpy_h2d(src, dst, *host_mem).await?),
            AcDevice::Remote(r) => r.mem_cpy_h2d(src, dst).await,
            AcDevice::Resilient(s) => s.mem_cpy_h2d(src, dst).await,
        }
    }

    /// Fill device memory with a byte value.
    pub async fn mem_set(&self, ptr: DevicePtr, len: u64, byte: u8) -> Result<(), AcError> {
        match self {
            AcDevice::Local { gpu, .. } => Ok(gpu.memset(ptr, len, byte).await?),
            AcDevice::Remote(r) => r.mem_set(ptr, len, byte).await,
            AcDevice::Resilient(s) => s.mem_set(ptr, len, byte).await,
        }
    }

    /// Copy device data back to the host.
    pub async fn mem_cpy_d2h(&self, src: DevicePtr, len: u64) -> Result<Payload, AcError> {
        match self {
            AcDevice::Local { gpu, host_mem } => Ok(gpu.memcpy_d2h(src, len, *host_mem).await?),
            AcDevice::Remote(r) => r.mem_cpy_d2h(src, len).await,
            AcDevice::Resilient(s) => s.mem_cpy_d2h(src, len).await,
        }
    }

    /// Launch a named kernel and wait for completion.
    pub async fn launch(
        &self,
        name: &str,
        cfg: LaunchConfig,
        args: &[KernelArg],
    ) -> Result<(), AcError> {
        match self {
            AcDevice::Local { gpu, .. } => Ok(gpu.launch(name, cfg, args).await?),
            AcDevice::Remote(r) => r.launch(name, cfg, args).await,
            AcDevice::Resilient(s) => s.launch(name, cfg, args).await,
        }
    }

    /// True for network-attached accelerators.
    pub fn is_remote(&self) -> bool {
        !matches!(self, AcDevice::Local { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_protocol_switches_at_threshold() {
        let p = TransferProtocol::h2d_default();
        assert_eq!(p.wire(1 << 20), WireProtocol::Pipeline { block: 128 << 10 });
        assert_eq!(
            p.wire(16 << 20),
            WireProtocol::Pipeline { block: 512 << 10 }
        );
        assert_eq!(
            p.wire(4 << 20),
            WireProtocol::Pipeline { block: 512 << 10 },
            "threshold itself uses the large block"
        );
    }

    #[test]
    fn defaults_match_paper_tuning() {
        assert_eq!(
            TransferProtocol::d2h_default(),
            TransferProtocol::Pipeline { block: 128 << 10 }
        );
        let FrontendConfig { h2d, .. } = FrontendConfig::default();
        assert_eq!(
            h2d,
            TransferProtocol::Adaptive {
                small_block: 128 << 10,
                large_block: 512 << 10,
                threshold: 4 << 20
            }
        );
    }
}
