//! Cluster assembly: wire up ARM, daemons, compute nodes in one call.
//!
//! The canonical layout mirrors Figure 1: an accelerator resource manager,
//! compute nodes, and accelerator nodes, all on one interconnect. Compute
//! nodes may additionally carry a node-local GPU so the same experiment can
//! be run against the classic static architecture (the paper's baselines).

use std::sync::Arc;

use dacc_arm::client::ArmClient;
use dacc_arm::health::HealthConfig;
use dacc_arm::proto::{arm_tags, ArmRequest, ArmResponse};
use dacc_arm::server::{run_arm_server_traced, ArmServerConfig};
use dacc_arm::state::{inventory, AcceleratorId, AllocPolicy, JobId, Pool, ShareConfig};
use dacc_fabric::mpi::{Endpoint, Fabric, Rank};
use dacc_fabric::payload::Payload;
use dacc_fabric::topology::{FabricParams, NodeId, Topology, TopologySpec};
use dacc_sim::fault::{FaultHook, ProcessFault};
use dacc_sim::prelude::*;
use dacc_vgpu::device::{HostMemKind, VirtualGpu};
use dacc_vgpu::kernel::KernelRegistry;
use dacc_vgpu::params::{ExecMode, GpuParams};

use crate::api::{AcDevice, AcError, FrontendConfig, RemoteAccelerator};
use crate::daemon::{run_daemon_health, DaemonConfig, DaemonHealth, DaemonStats};
use crate::failover::FailoverSession;
use crate::proto::{ac_tags, ControlBatch};

/// Everything needed to stand up a cluster.
#[derive(Clone, Copy, Debug)]
pub struct ClusterSpec {
    /// Number of compute nodes.
    pub compute_nodes: usize,
    /// Number of network-attached accelerators.
    pub accelerators: usize,
    /// Give each compute node a PCIe-attached GPU too (for baselines).
    pub local_gpus: bool,
    /// Interconnect parameters.
    pub fabric: FabricParams,
    /// Interconnect wiring model. Defaults to [`TopologySpec::from_env`]:
    /// `SingleSwitch` unless the `DACC_TOPOLOGY` environment variable
    /// selects `fattree[:radix]` or `dragonfly[:groups]`, so a CI matrix
    /// can steer every cluster-built test onto a multi-hop fabric without
    /// code changes.
    pub topology: TopologySpec,
    /// GPU hardware parameters (same for local and network-attached).
    pub gpu: GpuParams,
    /// Functional or timing-only execution.
    pub mode: ExecMode,
    /// Daemon tuning.
    pub daemon: DaemonConfig,
    /// Front-end tuning.
    pub frontend: FrontendConfig,
    /// ARM allocation policy.
    pub alloc_policy: AllocPolicy,
    /// Health plane (leases, heartbeats, epoch fencing). `None` (the
    /// default) reproduces the pre-health-plane cluster exactly: no
    /// heartbeat traffic, no lease expiry, epoch 0 everywhere.
    pub health: Option<HealthConfig>,
    /// Oversubscription (time-sliced vGPU sharing through the ARM's
    /// scheduler path). Requires `health` — slice rotation and fencing
    /// ride the lease/heartbeat machinery. `None` (the default) keeps
    /// every assignment exclusive.
    pub share: Option<ShareConfig>,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            compute_nodes: 1,
            accelerators: 3,
            local_gpus: false,
            fabric: FabricParams::qdr_infiniband(),
            topology: TopologySpec::from_env(),
            gpu: GpuParams::tesla_c1060(),
            mode: ExecMode::Functional,
            daemon: DaemonConfig::default(),
            frontend: FrontendConfig::default(),
            alloc_policy: AllocPolicy::FirstFit,
            health: None,
            share: None,
        }
    }
}

/// A built cluster: handles to everything the application layer needs.
pub struct Cluster {
    /// The message fabric (node 0 hosts the ARM; compute nodes follow;
    /// accelerator nodes last).
    pub fabric: Fabric,
    /// Rank of the accelerator resource manager.
    pub arm_rank: Rank,
    /// One endpoint per compute-node process (move each into its task).
    pub cn_endpoints: Vec<Endpoint>,
    /// Node-local GPUs, one per compute node (empty unless `local_gpus`).
    pub local_gpus: Vec<VirtualGpu>,
    /// The network-attached accelerators' GPUs (for test inspection).
    pub accel_gpus: Vec<VirtualGpu>,
    /// Daemon completion handles; resolve to [`DaemonStats`] at shutdown.
    pub daemon_handles: Vec<JoinHandle<DaemonStats>>,
    /// Per-daemon shared health state (fence, busy counter); heartbeat
    /// agents run only when [`ClusterSpec::health`] is set, but the
    /// handles exist either way for test inspection.
    pub daemon_health: Vec<DaemonHealth>,
    /// ARM completion handle; resolves to the final pool at shutdown.
    pub arm_handle: JoinHandle<Pool>,
    /// The kernel registry shared by every device.
    pub registry: KernelRegistry,
    /// The spec the cluster was built from.
    pub spec: ClusterSpec,
}

impl Cluster {
    /// Node id of compute node `i`.
    pub fn cn_node(&self, i: usize) -> NodeId {
        NodeId(1 + i)
    }

    /// Node id of accelerator `i`.
    pub fn ac_node(&self, i: usize) -> NodeId {
        NodeId(1 + self.spec.compute_nodes + i)
    }

    /// Daemon rank of accelerator `i`.
    pub fn daemon_rank(&self, i: usize) -> Rank {
        Rank(1 + self.spec.compute_nodes + i)
    }

    /// Attach a telemetry handle to the cluster's fabric: every layer
    /// (fabric send/recv, daemons, streams, ARM, front-end API) records
    /// into it from this point on.
    pub fn set_telemetry(&self, tele: dacc_telemetry::Telemetry) {
        self.fabric.set_telemetry(tele);
    }
}

/// Build the cluster onto `sim`: spawns the ARM server and one daemon per
/// accelerator, each with its own GPU sharing `registry`.
pub fn build_cluster(sim: &Sim, spec: ClusterSpec, registry: KernelRegistry) -> Cluster {
    build_cluster_chaos(sim, spec, registry, Tracer::disabled(), None)
}

/// [`build_cluster`] with a fault plane: `tracer` receives `fault.*`,
/// `retry.*` and `arm.failover` events from every layer, and `fault` (if
/// set) is consulted by the topology on every transmission and by each
/// daemon on every request, so a seeded schedule can drop messages, degrade
/// links, and crash or hang daemons deterministically.
pub fn build_cluster_chaos(
    sim: &Sim,
    spec: ClusterSpec,
    registry: KernelRegistry,
    tracer: Tracer,
    fault: Option<Arc<dyn FaultHook>>,
) -> Cluster {
    let h = sim.handle();
    // A dropped/corrupt ControlBatch discards up to CTRL_BATCH_MAX
    // responses wholesale; without a retry plane nothing replays them and
    // the front-end hangs awaiting its response. Flag the combination
    // rather than silently wedging a chaos run.
    if fault.is_some()
        && (spec.daemon.ctrl_batch || spec.frontend.ctrl_batch)
        && spec.frontend.retry.is_none()
        && spec.daemon.data_timeout.is_none()
    {
        tracer.record(&h, "config.warn", || {
            "ctrl_batch under fault injection without a retry policy or data_timeout: \
             a dropped ControlBatch loses its responses permanently"
                .to_string()
        });
    }
    let total_nodes = 1 + spec.compute_nodes + spec.accelerators;
    let topo = Topology::with_spec(&h, total_nodes, spec.fabric, spec.topology);
    topo.set_tracer(tracer.clone());
    topo.set_fault_hook(fault.clone());
    // Link-locality hint for the ARM: hop distances between every node
    // pair, so FirstFit can prefer accelerators close to the requester.
    // On the single switch every distance is equal and placement is
    // unchanged.
    let hop_matrix = topo.hop_matrix();
    let fabric = Fabric::new(&h, topo);

    // Control-batch unbundler: a daemon with `ctrl_batch` on packs several
    // responses/stream-acks for one peer into a single CTRL-tagged fabric
    // message; the fabric splits it back into per-tag envelopes on
    // delivery, so receivers never see the difference. A batch that fails
    // its CRC (or decode) is dropped whole, exactly like a lost message —
    // sender-side retry heals it. Installed unconditionally: with batching
    // off (the default) no CTRL traffic exists and this is inert.
    fabric.set_unbundler(
        ac_tags::CTRL,
        Arc::new(|p: &Payload| {
            if !p.is_functional() {
                // A size-only payload carries nothing to decode; treat it
                // like a damaged batch (dropped whole) rather than
                // panicking the dispatcher.
                return None;
            }
            let buf = p.to_bytes();
            let batch = ControlBatch::decode(&buf).ok()?;
            Some(
                batch
                    .entries
                    .into_iter()
                    .map(|(tag, bytes)| (dacc_fabric::mpi::Tag(tag), Payload::from_bytes(bytes)))
                    .collect(),
            )
        }),
    );

    // Rank 0: ARM.
    let arm_ep = fabric.add_endpoint(NodeId(0));
    let arm_rank = arm_ep.rank();

    // Ranks 1..=CN: compute-node processes.
    let cn_endpoints: Vec<Endpoint> = (0..spec.compute_nodes)
        .map(|i| fabric.add_endpoint(NodeId(1 + i)))
        .collect();

    // Ranks CN+1..: accelerator daemons.
    let mut accel_gpus = Vec::with_capacity(spec.accelerators);
    let mut daemon_handles = Vec::with_capacity(spec.accelerators);
    let mut daemon_ranks = Vec::with_capacity(spec.accelerators);
    let mut daemon_nodes = Vec::with_capacity(spec.accelerators);
    let mut daemon_health = Vec::with_capacity(spec.accelerators);
    for i in 0..spec.accelerators {
        let node = NodeId(1 + spec.compute_nodes + i);
        let ep = fabric.add_endpoint(node);
        daemon_ranks.push(ep.rank());
        daemon_nodes.push(node);
        let gpu = VirtualGpu::new(&h, "accel", spec.gpu, spec.mode, registry.clone());
        accel_gpus.push(gpu.clone());
        let mut daemon_cfg = spec.daemon;
        // The user-facing knob lives on FrontendConfig; either side of the
        // spec may opt the daemons into control-message coalescing.
        daemon_cfg.ctrl_batch |= spec.frontend.ctrl_batch;
        let daemon_tracer = tracer.clone();
        let daemon_fault = fault.clone();
        let health = DaemonHealth::new();
        daemon_health.push(health.clone());
        if let Some(hc) = spec.health {
            h.spawn(
                "heartbeat",
                heartbeat_agent(
                    ep.clone(),
                    arm_rank,
                    AcceleratorId(i),
                    hc,
                    health.clone(),
                    fault.clone(),
                ),
            );
        }
        daemon_handles.push(h.spawn("daemon", async move {
            run_daemon_health(ep, gpu, daemon_cfg, daemon_tracer, daemon_fault, health).await
        }));
    }

    // The ARM's pool over the daemons.
    let mut pool = Pool::with_policy(inventory(&daemon_nodes, &daemon_ranks), spec.alloc_policy);
    pool.set_locality(hop_matrix);
    if let Some(hc) = spec.health {
        pool.set_health(hc);
    }
    if let Some(sc) = spec.share {
        pool.set_share(sc);
    }
    let arm_tracer = tracer.clone();
    let arm_handle = h.spawn("arm", async move {
        run_arm_server_traced(arm_ep, pool, ArmServerConfig::default(), arm_tracer).await
    });

    let local_gpus = if spec.local_gpus {
        (0..spec.compute_nodes)
            .map(|_| VirtualGpu::new(&h, "local", spec.gpu, spec.mode, registry.clone()))
            .collect()
    } else {
        Vec::new()
    };

    Cluster {
        fabric,
        arm_rank,
        cn_endpoints,
        local_gpus,
        accel_gpus,
        daemon_handles,
        daemon_health,
        arm_handle,
        registry,
        spec,
    }
}

/// The per-daemon heartbeat agent: a sibling task on the accelerator
/// node that beats the ARM every [`HealthConfig::heartbeat_period`],
/// reporting the daemon's busy counter (implicit lease renewal) and its
/// adopted fence. The ARM's ack carries the authoritative fence — raising
/// it fences stale-epoch traffic in the request loop — and may order a
/// probe self-test when the accelerator is quarantined; a passed probe
/// reintegrates it on probation.
///
/// The agent dies with its daemon: it stops once the request loop exits
/// (shutdown or injected crash), so a dead daemon falls silent and the
/// ARM's liveness judgement takes over.
async fn heartbeat_agent(
    ep: Endpoint,
    arm: Rank,
    accel: AcceleratorId,
    hc: HealthConfig,
    health: DaemonHealth,
    fault: Option<Arc<dyn FaultHook>>,
) {
    let handle = ep.fabric().handle().clone();
    let me = ep.rank();
    let mut beat: u64 = 0;
    loop {
        handle.delay(hc.heartbeat_period).await;
        if !health.alive() {
            if health.started() {
                return;
            }
            // Daemon task not scheduled yet; try again next period.
            continue;
        }
        if let Some(hook) = &fault {
            if hook.process_state(me.0, handle.now()) == ProcessFault::Crash {
                return;
            }
            if !hook.heartbeat(me.0, beat, handle.now()) {
                // Muted beat (wedged health agent / flaky device): the
                // ARM sees silence even though the daemon still serves.
                beat += 1;
                continue;
            }
        }
        beat += 1;
        let busy = health.take_busy().min(u64::from(u32::MAX)) as u32;
        let req = ArmRequest::Heartbeat {
            accel,
            fence: health.fence(),
            busy,
        };
        ep.send(arm, arm_tags::REQUEST, Payload::from_vec(req.encode()))
            .await;
        let Some(env) = ep
            .recv_timeout(Some(arm), Some(arm_tags::RESPONSE), hc.heartbeat_period)
            .await
        else {
            continue;
        };
        let ack = env
            .payload
            .bytes()
            .and_then(|b| ArmResponse::decode(b).ok());
        let Some(ArmResponse::HeartbeatAck { fence, probe }) = ack else {
            continue;
        };
        health.raise_fence(fence);
        if probe {
            // Quarantine probe: run the self-test, then report the verdict.
            // The simulated self-test always passes — permanently broken
            // devices are modelled by staying silent (never reaching here)
            // or by exhausting the re-quarantine budget.
            handle.delay(hc.probe_cost).await;
            let req = ArmRequest::ProbeResult { accel, ok: true };
            ep.send(arm, arm_tags::REQUEST, Payload::from_vec(req.encode()))
                .await;
            let _ = ep
                .recv_timeout(Some(arm), Some(arm_tags::RESPONSE), hc.heartbeat_period)
                .await;
        }
    }
}

/// A compute-node process's view of the dynamic architecture: its fabric
/// endpoint, its ARM connection, and its job identity.
pub struct AcProcess {
    ep: Endpoint,
    arm: ArmClient,
    job: JobId,
    config: FrontendConfig,
    tracer: Tracer,
}

impl AcProcess {
    /// Create the process context (one per compute-node process).
    pub fn new(ep: Endpoint, arm_rank: Rank, job: JobId, config: FrontendConfig) -> Self {
        let arm = ArmClient::new(ep.clone(), arm_rank);
        AcProcess {
            ep,
            arm,
            job,
            config,
            tracer: Tracer::disabled(),
        }
    }

    /// Attach a tracer; accelerators acquired afterwards record `retry.*`
    /// and `arm.failover` events into it.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// This process's fabric endpoint.
    pub fn endpoint(&self) -> &Endpoint {
        &self.ep
    }

    /// This process's job id.
    pub fn job(&self) -> JobId {
        self.job
    }

    /// The ARM client (for queries and fault reports).
    pub fn arm(&self) -> &ArmClient {
        &self.arm
    }

    /// Static/dynamic allocation: get `n` exclusive accelerators, failing
    /// fast on shortage.
    pub async fn acquire(&self, n: u32) -> Result<Vec<RemoteAccelerator>, AcError> {
        let grants = self
            .arm
            .allocate(self.job, n)
            .await
            .map_err(|e| AcError::Local(e.to_string()))?;
        Ok(grants
            .into_iter()
            .map(|g| {
                RemoteAccelerator::new(self.ep.clone(), g.daemon_rank, self.config)
                    .with_epoch(g.epoch)
            })
            .collect())
    }

    /// Dynamic allocation that queues until accelerators free up.
    pub async fn acquire_waiting(&self, n: u32) -> Result<Vec<RemoteAccelerator>, AcError> {
        let grants = self
            .arm
            .allocate_waiting(self.job, n)
            .await
            .map_err(|e| AcError::Local(e.to_string()))?;
        Ok(grants
            .into_iter()
            .map(|g| {
                RemoteAccelerator::new(self.ep.clone(), g.daemon_rank, self.config)
                    .with_epoch(g.epoch)
            })
            .collect())
    }

    /// Tenant-aware allocation through the ARM's multi-tenant scheduler:
    /// admission quotas, weighted fair share, and all-or-nothing gang
    /// placement of `gang` accelerators. With `share_ok` a gang of one
    /// consents to time-sliced co-residency on a shared accelerator (watch
    /// [`ArmClient::take_slice_grant`] and adopt new epochs via
    /// [`RemoteAccelerator::set_epoch`]). With `wait` the call queues
    /// until placeable; otherwise it fails fast.
    pub async fn acquire_scheduled(
        &self,
        tenant: u32,
        gang: u32,
        share_ok: bool,
        wait: bool,
    ) -> Result<Vec<RemoteAccelerator>, AcError> {
        let grants = self
            .arm
            .submit_job(self.job, tenant, gang, share_ok, wait)
            .await
            .map_err(|e| AcError::Local(e.to_string()))?;
        Ok(grants
            .into_iter()
            .map(|g| {
                RemoteAccelerator::new(self.ep.clone(), g.daemon_rank, self.config)
                    .with_epoch(g.epoch)
            })
            .collect())
    }

    /// Acquire `n` accelerators behind the failover plane (§III-A): each
    /// session retries silently-dropped requests and, when its accelerator
    /// dies, reports it to the ARM and replays onto a replacement grant.
    /// `config.retry` should be set — it is the failure detector.
    pub async fn acquire_resilient(&self, n: u32) -> Result<Vec<FailoverSession>, AcError> {
        let grants = self
            .arm
            .allocate(self.job, n)
            .await
            .map_err(|e| AcError::Local(e.to_string()))?;
        Ok(grants
            .into_iter()
            .map(|g| {
                FailoverSession::new(
                    self.ep.clone(),
                    self.arm.clone(),
                    self.job,
                    g,
                    self.config,
                    self.tracer.clone(),
                )
            })
            .collect())
    }

    /// Job end: the middleware releases every accelerator the job holds
    /// (§III-C "accelerators are automatically released").
    pub async fn finish(&self) -> u32 {
        self.arm.release_job(self.job).await
    }

    /// Wrap a set of remote accelerators as [`AcDevice`]s.
    pub fn as_devices(accels: &[RemoteAccelerator]) -> Vec<AcDevice> {
        accels.iter().cloned().map(AcDevice::Remote).collect()
    }

    /// Wrap a local GPU as an [`AcDevice`] (static-architecture baseline).
    pub fn local_device(gpu: VirtualGpu) -> AcDevice {
        AcDevice::Local {
            gpu,
            host_mem: HostMemKind::Pinned,
        }
    }
}
