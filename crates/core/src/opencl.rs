//! An OpenCL-flavoured front-end over the same middleware.
//!
//! §IV: the software stack "is extensible to any accelerator programming
//! interface and therefore not restricted to CUDA by design" (MGP, one of
//! the related systems, is OpenCL-based). This module demonstrates that: a
//! `clCreateBuffer` / `clSetKernelArg` / `clEnqueue*` shaped API that
//! compiles down to exactly the same wire requests the CUDA-flavoured
//! front-end sends. Nothing daemon-side changes.

use dacc_fabric::payload::Payload;
use dacc_vgpu::kernel::{KernelArg, LaunchConfig};
use dacc_vgpu::memory::DevicePtr;

use crate::api::{AcDevice, AcError};

/// An OpenCL-style context: one device (local or network-attached).
pub struct ClContext {
    device: AcDevice,
}

/// A device buffer (`cl_mem`).
pub struct ClBuffer {
    ptr: DevicePtr,
    len: u64,
}

impl ClBuffer {
    /// Buffer size in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if zero-sized.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying device pointer (for interop with the CUDA-style API).
    pub fn device_ptr(&self) -> DevicePtr {
        self.ptr
    }
}

/// A kernel object: name plus positional arguments (`clSetKernelArg`).
pub struct ClKernel {
    name: String,
    args: Vec<Option<KernelArg>>,
}

impl ClKernel {
    /// Set argument `index` to a buffer.
    pub fn set_arg_buffer(&mut self, index: usize, buf: &ClBuffer) {
        self.set(index, KernelArg::Ptr(buf.ptr));
    }

    /// Set argument `index` to an integer.
    pub fn set_arg_u64(&mut self, index: usize, v: u64) {
        self.set(index, KernelArg::U64(v));
    }

    /// Set argument `index` to a double.
    pub fn set_arg_f64(&mut self, index: usize, v: f64) {
        self.set(index, KernelArg::F64(v));
    }

    fn set(&mut self, index: usize, arg: KernelArg) {
        if self.args.len() <= index {
            self.args.resize(index + 1, None);
        }
        self.args[index] = Some(arg);
    }

    fn collected(&self) -> Result<Vec<KernelArg>, AcError> {
        self.args
            .iter()
            .cloned()
            .map(|a| a.ok_or(AcError::Local("unset kernel argument".into())))
            .collect()
    }
}

/// An in-order command queue on the context's device.
///
/// Operations complete in enqueue order; each `enqueue_*` here resolves at
/// operation completion (the blocking flavour of the OpenCL calls), and
/// [`ClCommandQueue::finish`] is then a no-op kept for API fidelity.
pub struct ClCommandQueue<'a> {
    ctx: &'a ClContext,
}

impl ClContext {
    /// Create a context on one device.
    pub fn new(device: AcDevice) -> Self {
        ClContext { device }
    }

    /// `clCreateBuffer`: allocate a device buffer.
    pub async fn create_buffer(&self, len: u64) -> Result<ClBuffer, AcError> {
        let ptr = self.device.mem_alloc(len).await?;
        Ok(ClBuffer { ptr, len })
    }

    /// `clReleaseMemObject`: free a buffer.
    pub async fn release_buffer(&self, buf: ClBuffer) -> Result<(), AcError> {
        self.device.mem_free(buf.ptr).await
    }

    /// `clCreateKernel`: a kernel object for a registered kernel name.
    pub fn create_kernel(&self, name: &str) -> ClKernel {
        ClKernel {
            name: name.to_owned(),
            args: Vec::new(),
        }
    }

    /// Create the in-order command queue.
    pub fn command_queue(&self) -> ClCommandQueue<'_> {
        ClCommandQueue { ctx: self }
    }
}

impl ClCommandQueue<'_> {
    /// `clEnqueueWriteBuffer` (blocking): host → device.
    pub async fn enqueue_write_buffer(
        &self,
        buf: &ClBuffer,
        offset: u64,
        data: &Payload,
    ) -> Result<(), AcError> {
        assert!(offset + data.len() <= buf.len, "write exceeds buffer");
        self.ctx
            .device
            .mem_cpy_h2d(data, buf.ptr.offset(offset))
            .await
    }

    /// `clEnqueueReadBuffer` (blocking): device → host.
    pub async fn enqueue_read_buffer(
        &self,
        buf: &ClBuffer,
        offset: u64,
        len: u64,
    ) -> Result<Payload, AcError> {
        assert!(offset + len <= buf.len, "read exceeds buffer");
        self.ctx
            .device
            .mem_cpy_d2h(buf.ptr.offset(offset), len)
            .await
    }

    /// `clEnqueueFillBuffer`.
    pub async fn enqueue_fill_buffer(&self, buf: &ClBuffer, byte: u8) -> Result<(), AcError> {
        self.ctx.device.mem_set(buf.ptr, buf.len, byte).await
    }

    /// `clEnqueueNDRangeKernel`: launch with a global/local work size
    /// (1-D, like the middleware's grid×block).
    pub async fn enqueue_nd_range_kernel(
        &self,
        kernel: &ClKernel,
        global_work_size: u64,
        local_work_size: u32,
    ) -> Result<(), AcError> {
        let local = local_work_size.max(1);
        let groups = global_work_size.div_ceil(local as u64).max(1) as u32;
        self.ctx
            .device
            .launch(
                &kernel.name,
                LaunchConfig::linear(groups, local),
                &kernel.collected()?,
            )
            .await
    }

    /// `clFinish`: every enqueued operation has already completed (the
    /// blocking call flavour), so this is a no-op kept for API fidelity.
    pub async fn finish(&self) -> Result<(), AcError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{FrontendConfig, RemoteAccelerator};
    use crate::cluster::{build_cluster, ClusterSpec};
    use dacc_sim::prelude::*;
    use dacc_vgpu::kernel::{register_builtin_kernels, KernelRegistry};
    use dacc_vgpu::params::{ExecMode, GpuParams};

    #[test]
    fn opencl_flavoured_vec_add_on_remote_accelerator() {
        let mut sim = Sim::new();
        let registry = KernelRegistry::new();
        register_builtin_kernels(&registry);
        let spec = ClusterSpec {
            compute_nodes: 1,
            accelerators: 1,
            mode: ExecMode::Functional,
            gpu: GpuParams::tesla_c1060(),
            ..ClusterSpec::default()
        };
        let mut cluster = build_cluster(&sim, spec, registry);
        let ep = cluster.cn_endpoints.remove(0);
        let daemon = cluster.daemon_rank(0);

        let out = sim.spawn("cl", async move {
            let remote = RemoteAccelerator::new(ep, daemon, FrontendConfig::default());
            let ctx = ClContext::new(AcDevice::Remote(remote.clone()));
            let q = ctx.command_queue();

            let n = 64u64;
            let a = ctx.create_buffer(n * 8).await.unwrap();
            let b = ctx.create_buffer(n * 8).await.unwrap();
            let c = ctx.create_buffer(n * 8).await.unwrap();

            let xs: Vec<u8> = (0..n).flat_map(|i| (i as f64).to_le_bytes()).collect();
            let ys: Vec<u8> = (0..n)
                .flat_map(|i| (2.0 * i as f64).to_le_bytes())
                .collect();
            q.enqueue_write_buffer(&a, 0, &Payload::from_vec(xs))
                .await
                .unwrap();
            q.enqueue_write_buffer(&b, 0, &Payload::from_vec(ys))
                .await
                .unwrap();

            let mut k = ctx.create_kernel("vec_add");
            k.set_arg_buffer(0, &a);
            k.set_arg_buffer(1, &b);
            k.set_arg_buffer(2, &c);
            k.set_arg_u64(3, n);
            q.enqueue_nd_range_kernel(&k, n, 32).await.unwrap();
            q.finish().await.unwrap();

            let back = q.enqueue_read_buffer(&c, 0, n * 8).await.unwrap();
            ctx.release_buffer(a).await.unwrap();
            ctx.release_buffer(b).await.unwrap();
            ctx.release_buffer(c).await.unwrap();
            remote.shutdown().await.unwrap();
            back
        });
        sim.run();
        let payload = out.try_take().expect("did not finish");
        let vals: Vec<f64> = payload
            .to_bytes()
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(*v, 3.0 * i as f64, "c[{i}]");
        }
    }

    #[test]
    fn unset_argument_is_an_error() {
        let mut sim = Sim::new();
        let registry = KernelRegistry::new();
        register_builtin_kernels(&registry);
        let spec = ClusterSpec {
            compute_nodes: 1,
            accelerators: 1,
            mode: ExecMode::Functional,
            gpu: GpuParams::tesla_c1060(),
            ..ClusterSpec::default()
        };
        let mut cluster = build_cluster(&sim, spec, registry);
        let ep = cluster.cn_endpoints.remove(0);
        let daemon = cluster.daemon_rank(0);
        let out = sim.spawn("cl", async move {
            let remote = RemoteAccelerator::new(ep, daemon, FrontendConfig::default());
            let ctx = ClContext::new(AcDevice::Remote(remote.clone()));
            let q = ctx.command_queue();
            let mut k = ctx.create_kernel("vec_add");
            k.set_arg_u64(3, 4); // args 0..2 left unset
            let err = q.enqueue_nd_range_kernel(&k, 4, 4).await.unwrap_err();
            remote.shutdown().await.unwrap();
            err
        });
        sim.run();
        assert!(matches!(out.try_take().unwrap(), AcError::Local(_)));
    }

    #[test]
    fn fill_buffer_works() {
        let mut sim = Sim::new();
        let registry = KernelRegistry::new();
        register_builtin_kernels(&registry);
        let spec = ClusterSpec {
            compute_nodes: 1,
            accelerators: 1,
            mode: ExecMode::Functional,
            gpu: GpuParams::tesla_c1060(),
            ..ClusterSpec::default()
        };
        let mut cluster = build_cluster(&sim, spec, registry);
        let ep = cluster.cn_endpoints.remove(0);
        let daemon = cluster.daemon_rank(0);
        let out = sim.spawn("cl", async move {
            let remote = RemoteAccelerator::new(ep, daemon, FrontendConfig::default());
            let ctx = ClContext::new(AcDevice::Remote(remote.clone()));
            let q = ctx.command_queue();
            let buf = ctx.create_buffer(512).await.unwrap();
            q.enqueue_fill_buffer(&buf, 0x77).await.unwrap();
            let back = q.enqueue_read_buffer(&buf, 0, 512).await.unwrap();
            remote.shutdown().await.unwrap();
            back
        });
        sim.run();
        let payload = out.try_take().unwrap();
        assert!(payload.expect_bytes().iter().all(|&b| b == 0x77));
    }
}
