//! The back-end daemon running on every accelerator (§IV).
//!
//! Receives requests from front-ends over the fabric and executes them on
//! the local GPU through the (virtual) CUDA driver API. Bulk copies use
//! either the naive protocol — receive everything into main memory, then one
//! DMA — or the pipelined protocol: blocks are received into a bounded ring
//! of GPUDirect pinned buffers and DMA'd onward while later blocks are still
//! on the wire.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use bytes::Bytes;
use dacc_fabric::codec::EncodeBuf;
use dacc_fabric::mpi::{Endpoint, Rank, Tag};
use dacc_fabric::payload::Payload;
use dacc_sim::fault::{FaultHook, ProcessFault};
use dacc_sim::prelude::*;
use dacc_vgpu::device::{GpuError, HostMemKind, VirtualGpu};
use dacc_vgpu::kernel::{KernelArg, KernelError, LaunchConfig};
use dacc_vgpu::memory::{DevicePtr, MemError};
use dacc_vgpu::pinned::PinnedPool;

use crate::proto::{
    ac_tags, open_block, seal_block, AnyRequest, ControlBatch, Request, Response, Status,
    StreamAck, WireProtocol, CRC_TRAILER_BYTES, STREAM_VIRT_BASE,
};

/// Daemon tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct DaemonConfig {
    /// CPU cost to decode and dispatch one request.
    pub request_cost: SimDuration,
    /// CPU cost per pipeline block (progressing MPI, posting the DMA).
    /// This sits between a block's arrival and the posting of the next
    /// receive, so it shows up as the per-block wire gap the paper blames
    /// for small-block overhead at large message sizes.
    pub per_block_cost: SimDuration,
    /// Number of pinned buffers in the GPUDirect ring.
    pub pinned_depth: usize,
    /// Size of each pinned buffer (must cover the largest pipeline block).
    pub pinned_buffer: u64,
    /// Whether GPUDirect NIC/GPU buffer sharing is enabled; when off, every
    /// block pays a host staging copy.
    pub gpudirect: bool,
    /// Number of block receives posted ahead during pipelined H2D
    /// transfers. With 1 (the paper-era behaviour) each block's rendezvous
    /// clear-to-send waits for the previous block's arrival, leaving a
    /// per-block wire gap; larger values pre-issue CTSs and close the gap
    /// (bounded by `pinned_depth`).
    pub recv_prepost: usize,
    /// How long to wait for each data-phase message before aborting the
    /// operation with [`Status::Timeout`]. `None` (the default) waits
    /// forever, which is correct on a lossless fabric; runs with injected
    /// message drops must set this or a lost block wedges the daemon.
    pub data_timeout: Option<SimDuration>,
    /// Coalesce small control messages — terminal responses and stream
    /// acks — bound for the same peer into one
    /// [`ControlBatch`](crate::proto::ControlBatch) frame when several are
    /// staged in the same service window. Off by default: batching changes
    /// fabric message counts, so archived virtual-time results stay
    /// pinned unless a run opts in.
    ///
    /// Under fault injection, batching widens the blast radius of a
    /// single drop/corrupt fault from one control message to a whole
    /// batch (the fabric discards a damaged [`ControlBatch`] wholesale),
    /// so runs that inject faults should only enable it together with a
    /// front-end retry policy and [`DaemonConfig::data_timeout`] —
    /// otherwise a front-end awaiting a discarded response hangs forever.
    /// [`build_cluster_chaos`](crate::cluster::build_cluster_chaos)
    /// traces a `config.warn` event when this combination is detected.
    pub ctrl_batch: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            request_cost: SimDuration::from_micros(3),
            per_block_cost: SimDuration::from_nanos(400),
            pinned_depth: 4,
            pinned_buffer: 1 << 20,
            gpudirect: true,
            recv_prepost: 1,
            data_timeout: None,
            ctrl_batch: false,
        }
    }
}

/// Daemon activity counters, returned when the daemon shuts down.
#[derive(Clone, Copy, Debug, Default)]
pub struct DaemonStats {
    /// Requests served (including the final shutdown).
    pub requests: u64,
    /// Payload bytes received from front-ends (H2D + peer).
    pub bytes_in: u64,
    /// Payload bytes sent to front-ends (D2H + peer).
    pub bytes_out: u64,
    /// Peak host-memory footprint of receive buffers. The naive protocol
    /// needs the full message; the pipeline needs `depth × buffer` no matter
    /// the message size (§V.A).
    pub host_buffer_peak: u64,
    /// Kernels launched on behalf of front-ends.
    pub kernels: u64,
    /// Command-stream batch frames received (each counts once in
    /// `requests`).
    pub stream_batches: u64,
    /// Individual commands executed out of stream batches.
    pub stream_cmds: u64,
}

/// State shared between a daemon's request loop and its heartbeat agent
/// (a sibling task on the same simulated process, spawned by the cluster
/// builder when the health plane is enabled).
///
/// The agent learns the ARM's current **fence** from heartbeat acks and
/// raises it here; the request loop then rejects any framed request or
/// stream batch stamped with an older assignment epoch
/// ([`Status::StaleEpoch`]) before it can touch device state, and resets
/// its per-client sessions so the next holder starts clean. In the other
/// direction the loop counts executed operations so the agent can report
/// the accelerator busy — the ARM renews the holder's lease implicitly on
/// that traffic.
#[derive(Clone, Default)]
pub struct DaemonHealth(Rc<RefCell<DaemonHealthState>>);

#[derive(Default)]
struct DaemonHealthState {
    fence: u64,
    busy_ops: u64,
    reset: bool,
    alive: bool,
    started: bool,
}

impl DaemonHealth {
    /// Fresh shared state (fence 0 — nothing is fenced).
    pub fn new() -> Self {
        Self::default()
    }

    /// The current fence: framed traffic stamped with an epoch below this
    /// is rejected. Epoch 0 (unstamped/legacy) is never fenced.
    pub fn fence(&self) -> u64 {
        self.0.borrow().fence
    }

    /// Raise the fence (monotonic). A raise also schedules a session
    /// reset in the request loop so the evicted holder's kernel bindings
    /// and stream regions cannot leak into the next assignment.
    pub fn raise_fence(&self, fence: u64) {
        let mut st = self.0.borrow_mut();
        if fence > st.fence {
            st.fence = fence;
            st.reset = true;
        }
    }

    /// Consume the pending session-reset flag.
    fn take_reset(&self) -> bool {
        std::mem::take(&mut self.0.borrow_mut().reset)
    }

    fn count_op(&self) {
        self.0.borrow_mut().busy_ops += 1;
    }

    /// Operations executed since the last call; the heartbeat agent
    /// reports this as the accelerator's busyness (implicit lease renewal).
    pub fn take_busy(&self) -> u64 {
        std::mem::take(&mut self.0.borrow_mut().busy_ops)
    }

    /// True while the request loop is running (between service start and
    /// shutdown/crash). The heartbeat agent stops beating when this drops.
    pub fn alive(&self) -> bool {
        self.0.borrow().alive
    }

    /// True once the request loop has started serving at least once.
    pub fn started(&self) -> bool {
        self.0.borrow().started
    }

    fn set_alive(&self, alive: bool) {
        let mut st = self.0.borrow_mut();
        st.alive = alive;
        st.started |= alive;
    }
}

/// One live stream-virtual allocation from a client's command stream.
struct StreamRegion {
    virt: u64,
    len: u64,
    real: DevicePtr,
}

#[derive(Default)]
struct Session {
    kernel: Option<String>,
    args: Vec<KernelArg>,
    /// Stream-virtual allocations (see [`Request::MemAllocAt`]), translated
    /// on every use from this client.
    regions: Vec<StreamRegion>,
}

impl Session {
    /// Translate a possibly stream-virtual pointer to a real device pointer.
    fn resolve_ptr(&self, p: DevicePtr) -> Result<DevicePtr, Status> {
        if p.0 < STREAM_VIRT_BASE {
            return Ok(p);
        }
        self.regions
            .iter()
            .find(|r| p.0 >= r.virt && p.0 - r.virt < r.len.max(1))
            .map(|r| r.real.offset(p.0 - r.virt))
            .ok_or(Status::InvalidPointer)
    }

    /// Translate any stream-virtual pointer arguments for a kernel launch.
    fn resolve_args(&self, args: &[KernelArg]) -> Result<Vec<KernelArg>, Status> {
        args.iter()
            .map(|a| match a {
                KernelArg::Ptr(p) => self.resolve_ptr(*p).map(KernelArg::Ptr),
                other => Ok(*other),
            })
            .collect()
    }
}

fn status_of_gpu_error(e: &GpuError) -> Status {
    match e {
        GpuError::Mem(MemError::OutOfMemory { .. }) => Status::OutOfMemory,
        GpuError::Mem(MemError::InvalidPointer(_)) | GpuError::Mem(MemError::NotABase(_)) => {
            Status::InvalidPointer
        }
        GpuError::Mem(MemError::OutOfBounds { .. }) => Status::OutOfBounds,
        GpuError::Kernel(KernelError::UnknownKernel(_)) => Status::UnknownKernel,
        GpuError::Kernel(KernelError::BadArg(_)) => Status::BadArgs,
        GpuError::Kernel(KernelError::Mem(_)) => Status::OutOfBounds,
        GpuError::Kernel(KernelError::Failed(_)) => Status::KernelFailed,
    }
}

/// Run a back-end daemon on `ep`, driving `gpu`, until a front-end sends
/// `Shutdown`. Returns the daemon's activity counters.
pub async fn run_daemon(ep: Endpoint, gpu: VirtualGpu, config: DaemonConfig) -> DaemonStats {
    run_daemon_traced(ep, gpu, config, Tracer::disabled()).await
}

pub(crate) fn request_kind(req: &Request) -> &'static str {
    match req {
        Request::MemAlloc { .. } => "MemAlloc",
        Request::MemFree { .. } => "MemFree",
        Request::MemCpyH2D { .. } => "MemCpyH2D",
        Request::MemCpyD2H { .. } => "MemCpyD2H",
        Request::KernelCreate { .. } => "KernelCreate",
        Request::KernelSetArgs { .. } => "KernelSetArgs",
        Request::KernelRun { .. } => "KernelRun",
        Request::PeerSend { .. } => "PeerSend",
        Request::PeerRecv { .. } => "PeerRecv",
        Request::MemSet { .. } => "MemSet",
        Request::Ping => "Ping",
        Request::Shutdown => "Shutdown",
        Request::Launch { .. } => "Launch",
        Request::MemAllocAt { .. } => "MemAllocAt",
        Request::Snapshot { .. } => "Snapshot",
        Request::Restore { .. } => "Restore",
    }
}

/// [`run_daemon`] with an event tracer: every request is recorded as a
/// `daemon.request` event (`<Kind> from rankN`).
pub async fn run_daemon_traced(
    ep: Endpoint,
    gpu: VirtualGpu,
    config: DaemonConfig,
    tracer: Tracer,
) -> DaemonStats {
    run_daemon_chaos(ep, gpu, config, tracer, None).await
}

/// True for operations whose bulk-data phase must be re-executed on a
/// replayed request (the front-end re-drives the data messages); all other
/// operations answer a replay from the dedupe cache without re-executing.
fn has_data_phase(req: &Request) -> bool {
    matches!(
        req,
        Request::MemCpyH2D { .. }
            | Request::MemCpyD2H { .. }
            | Request::PeerSend { .. }
            | Request::PeerRecv { .. }
            | Request::Snapshot { .. }
            | Request::Restore { .. }
    )
}

/// [`run_daemon_traced`] with an optional fault hook, consulted once per
/// request: `Crash` makes the daemon vanish mid-service (no response, no
/// tear-down), `Hang` stalls it. Framed requests (see
/// [`crate::proto::RequestFrame`]) are deduplicated against the last
/// completed operation per front-end so a retried request whose response
/// was lost is not executed twice.
pub async fn run_daemon_chaos(
    ep: Endpoint,
    gpu: VirtualGpu,
    config: DaemonConfig,
    tracer: Tracer,
    fault: Option<Arc<dyn FaultHook>>,
) -> DaemonStats {
    run_daemon_health(ep, gpu, config, tracer, fault, DaemonHealth::new()).await
}

/// [`run_daemon_chaos`] with a shared [`DaemonHealth`] handle: the fence
/// adopted by the daemon's heartbeat agent rejects stale-epoch traffic
/// ([`Status::StaleEpoch`]) and resets sessions, and executed operations
/// are counted for implicit lease renewal.
pub async fn run_daemon_health(
    ep: Endpoint,
    gpu: VirtualGpu,
    config: DaemonConfig,
    tracer: Tracer,
    fault: Option<Arc<dyn FaultHook>>,
    health: DaemonHealth,
) -> DaemonStats {
    health.set_alive(true);
    let handle = ep.fabric().handle().clone();
    let tele = ep.fabric().telemetry();
    let me = ep.rank();
    let pool = PinnedPool::new(
        &handle,
        config.pinned_depth,
        config.pinned_buffer,
        config.gpudirect,
        gpu.params().staging_rate,
    );
    let mut stats = DaemonStats::default();
    let mut sessions: HashMap<Rank, Session> = HashMap::new();
    // Last completed framed operation per front-end: (op_id, response).
    let mut completed: HashMap<Rank, (u64, Response)> = HashMap::new();
    let mut coal = Coalescer::new(config.ctrl_batch);

    loop {
        // The batching window closes when the request queue goes idle:
        // anything staged while requests kept arriving back-to-back is
        // flushed (coalesced per peer) before the daemon blocks. Every
        // staged message is owed to a peer that is *waiting* on it, but an
        // empty queue only guarantees progress globally — one tenant's
        // lone staged response must not wait behind another tenant's
        // continuous stream, so `tick` additionally flushes any peer
        // whose staging sat idle for a bounded number of windows.
        coal.tick(&ep).await;
        if coal.has_staged() && ep.iprobe(None, Some(ac_tags::REQUEST)).is_none() {
            coal.flush_all(&ep).await;
        }
        let env = ep.recv(None, Some(ac_tags::REQUEST)).await;
        let t_arrive = handle.now();
        let cn = env.src;
        if health.take_reset() {
            // The ARM reclaimed this accelerator (fence raised): drop every
            // client's kernel bindings, stream regions, and dedupe entries
            // so the next holder starts on a clean device.
            sessions.clear();
            completed.clear();
            let fence = health.fence();
            tracer.record(&handle, "daemon.reset", || {
                format!("{me} resets sessions at fence {fence}")
            });
            tele.count("daemon.reset", 1);
        }
        if let Some(hook) = &fault {
            match hook.process_state(me.0, handle.now()) {
                ProcessFault::Healthy => {}
                ProcessFault::Hang(d) => {
                    tracer.record(&handle, "fault.hang", || format!("{me} stalls for {d}"));
                    handle.delay(d).await;
                }
                ProcessFault::Crash => {}
            }
            // Re-check after a possible stall: a hang may straddle the
            // crash time.
            if hook.process_state(me.0, handle.now()) == ProcessFault::Crash {
                tracer.record(&handle, "fault.crash", || format!("{me} dies"));
                health.set_alive(false);
                return stats;
            }
        }
        stats.requests += 1;
        let (framed, op_id, attempt, epoch, req) =
            match env.payload.bytes().map(|b| AnyRequest::decode(b)) {
                Some(Ok(AnyRequest::Bare(r))) => (false, 0, 0, 0, r),
                Some(Ok(AnyRequest::Framed(f))) => (true, f.op_id, f.attempt, f.epoch, f.req),
                Some(Ok(AnyRequest::Batch(batch))) => {
                    // Command-stream batch: one message, in-order execution,
                    // one cumulative ack. The whole batch pays the per-request
                    // dispatch cost once — that is the point of batching.
                    handle.delay(config.request_cost).await;
                    stats.stream_batches += 1;
                    let ncmds = batch.cmds.len();
                    let fence = health.fence();
                    if batch.epoch != 0 && batch.epoch < fence {
                        // The sender's grant was revoked: reject the whole
                        // batch with one cumulative StaleEpoch ack and never
                        // touch device state.
                        let bepoch = batch.epoch;
                        tracer.record(&handle, "daemon.fenced", || {
                            format!(
                                "StreamBatch[{ncmds}] from {cn}: epoch {bepoch} < fence {fence}"
                            )
                        });
                        tele.count("daemon.fenced", 1);
                        let ack = StreamAck {
                            seq: batch.first_seq.wrapping_add(ncmds as u64).wrapping_sub(1),
                            status: Status::StaleEpoch,
                            value: 0,
                        };
                        coal.ack(&ep, cn, ac_tags::stream_ack_tag(batch.stream), ack)
                            .await;
                        continue;
                    }
                    tracer.record(&handle, "daemon.request", || {
                        format!("StreamBatch[{ncmds}] from {cn}")
                    });
                    tele.span_at(
                        "daemon.decode",
                        || format!("StreamBatch[{ncmds}] from {cn}"),
                        t_arrive,
                        handle.now(),
                        Some(env.payload.len()),
                        None,
                    );
                    tele.count("daemon.stream.batches", 1);
                    let exec_span = tele.span(&handle, "daemon.execute", || {
                        format!("StreamBatch[{ncmds}] from {cn}")
                    });
                    let data_tag = ac_tags::stream_data_tag(batch.stream);
                    let session = sessions.entry(cn).or_default();
                    let mut first_err: Option<Status> = None;
                    let mut last_value = 0u64;
                    let mut seq = batch.first_seq;
                    for cmd in batch.cmds {
                        stats.stream_cmds += 1;
                        health.count_op();
                        tele.count("daemon.stream.cmds", 1);
                        handle.delay(config.per_block_cost).await;
                        tracer.record(&handle, "daemon.stream.cmd", || {
                            format!("{} seq {} from {}", request_kind(&cmd), seq, cn)
                        });
                        // Non-batchable commands are rejected individually, but
                        // the rest of the batch still executes so the stream's
                        // data-tag pairing never skews; the client latches the
                        // first error as its sticky stream error.
                        let resp = if cmd.batchable() {
                            exec_batchable(
                                &handle, &ep, &gpu, &pool, &config, &mut stats, session, cn, cmd,
                                data_tag,
                            )
                            .await
                        } else {
                            Response::err(Status::Malformed)
                        };
                        if resp.status != Status::Ok && first_err.is_none() {
                            first_err = Some(resp.status);
                        }
                        last_value = resp.value;
                        seq = seq.wrapping_add(1);
                    }
                    let ack = StreamAck {
                        seq: seq.wrapping_sub(1),
                        status: first_err.unwrap_or(Status::Ok),
                        value: last_value,
                    };
                    drop(exec_span);
                    let ack_seq = ack.seq;
                    let ack_span = tele
                        .span(&handle, "daemon.ack", || {
                            format!("StreamAck seq {ack_seq} to {cn}")
                        })
                        .op(ack_seq);
                    coal.ack(&ep, cn, ac_tags::stream_ack_tag(batch.stream), ack)
                        .await;
                    drop(ack_span);
                    continue;
                }
                _ => {
                    coal.respond(&ep, cn, ac_tags::RESPONSE, Response::err(Status::Malformed))
                        .await;
                    continue;
                }
            };
        let resp_tag = if framed {
            ac_tags::response_tag(op_id, attempt)
        } else {
            ac_tags::RESPONSE
        };
        let data_tag = if framed {
            ac_tags::data_tag(op_id, attempt)
        } else {
            ac_tags::DATA
        };
        handle.delay(config.request_cost).await;
        tracer.record(&handle, "daemon.request", || {
            format!("{} from {}", request_kind(&req), cn)
        });
        tele.span_at(
            "daemon.decode",
            || format!("{} from {}", request_kind(&req), cn),
            t_arrive,
            handle.now(),
            Some(env.payload.len()),
            framed.then_some(op_id),
        );

        // Fence stale holders before the dedupe cache and before any
        // execution: an op stamped with a pre-reclaim epoch must never
        // mutate the (possibly reassigned) device.
        let fence = health.fence();
        if framed && epoch != 0 && epoch < fence {
            tracer.record(&handle, "daemon.fenced", || {
                format!(
                    "{} op {op_id} from {cn}: epoch {epoch} < fence {fence}",
                    request_kind(&req)
                )
            });
            tele.count("daemon.fenced", 1);
            coal.respond(&ep, cn, resp_tag, Response::err(Status::StaleEpoch))
                .await;
            continue;
        }

        // A replayed operation (same op id as the last one this front-end
        // completed) is answered from the cache unless its data phase must
        // be re-driven; data-phase ops are idempotent re-executions.
        if framed && !has_data_phase(&req) {
            if let Some((last_op, last_resp)) = completed.get(&cn) {
                if *last_op == op_id {
                    tracer.record(&handle, "daemon.dedupe", || {
                        format!("replay op {op_id} attempt {attempt} from {cn}")
                    });
                    tele.count("daemon.dedupe", 1);
                    tele.instant(&handle, "daemon.dedupe", || {
                        format!("replay op {op_id} attempt {attempt} from {cn}")
                    });
                    coal.respond(&ep, cn, resp_tag, *last_resp).await;
                    continue;
                }
            }
        }

        health.count_op();
        let exec_span = tele
            .span(&handle, "daemon.execute", || {
                format!("{} from {}", request_kind(&req), cn)
            })
            .op(op_id);
        let resp = if req.batchable() {
            let session = sessions.entry(cn).or_default();
            exec_batchable(
                &handle, &ep, &gpu, &pool, &config, &mut stats, session, cn, req, data_tag,
            )
            .await
        } else {
            let session = sessions.entry(cn).or_default();
            match req {
                Request::MemCpyD2H { src, len, protocol } => {
                    // Validate before streaming so the front-end knows
                    // whether data messages will follow the response.
                    let valid = match session.resolve_ptr(src) {
                        Ok(real) => gpu
                            .mem()
                            .resolve(real, len)
                            .map(|_| real)
                            .map_err(|e| status_of_gpu_error(&e.into())),
                        Err(st) => Err(st),
                    };
                    let block_ok = match protocol {
                        WireProtocol::Pipeline { .. } => {
                            protocol.block_size(len) <= config.pinned_buffer
                        }
                        WireProtocol::Naive => true,
                    };
                    match valid {
                        Err(st) => {
                            coal.respond(&ep, cn, resp_tag, Response::err(st)).await;
                        }
                        Ok(_) if !block_ok => {
                            coal.respond(&ep, cn, resp_tag, Response::err(Status::Malformed))
                                .await;
                        }
                        Ok(real) => {
                            // Pre-data response: the front-end awaits it
                            // before its data phase — never stage it.
                            coal.respond_now(&ep, cn, resp_tag, Response::ok()).await;
                            stream_d2h(
                                &handle, &ep, &gpu, &pool, &config, &mut stats, cn, real, len,
                                protocol, data_tag,
                            )
                            .await;
                        }
                    }
                    continue;
                }
                Request::Snapshot { regions, block } => {
                    // Serialize the named device regions to the front-end
                    // over the pipelined block protocol, exactly like a
                    // multi-region D2H: validate everything first so the
                    // front-end knows from the response whether data blocks
                    // will follow, then stream region by region.
                    let protocol = WireProtocol::Pipeline { block };
                    let mut resolved = Vec::with_capacity(regions.len());
                    let mut total = 0u64;
                    let mut err = None;
                    for (virt, len) in &regions {
                        let valid = match session.resolve_ptr(DevicePtr(*virt)) {
                            Ok(real) => gpu
                                .mem()
                                .resolve(real, *len)
                                .map(|_| real)
                                .map_err(|e| status_of_gpu_error(&e.into())),
                            Err(st) => Err(st),
                        };
                        match valid {
                            Ok(real) => {
                                resolved.push((real, *len));
                                total += *len;
                            }
                            Err(st) => {
                                err = Some(st);
                                break;
                            }
                        }
                    }
                    let block_ok = regions
                        .iter()
                        .all(|(_, len)| protocol.block_size(*len) <= config.pinned_buffer);
                    match err {
                        Some(st) => {
                            coal.respond(&ep, cn, resp_tag, Response::err(st)).await;
                        }
                        None if !block_ok => {
                            coal.respond(&ep, cn, resp_tag, Response::err(Status::Malformed))
                                .await;
                        }
                        None => {
                            // Pre-data response (see MemCpyD2H above).
                            coal.respond_now(
                                &ep,
                                cn,
                                resp_tag,
                                Response {
                                    status: Status::Ok,
                                    value: total,
                                },
                            )
                            .await;
                            for (real, len) in resolved {
                                stream_d2h(
                                    &handle, &ep, &gpu, &pool, &config, &mut stats, cn, real, len,
                                    protocol, data_tag,
                                )
                                .await;
                            }
                        }
                    }
                    continue;
                }
                Request::Restore { regions, block } => {
                    // Deserialize previously snapshotted regions back into
                    // device memory: a multi-region H2D. After the first
                    // failure the remaining regions' blocks are already in
                    // flight, so drain them to keep the channel clean and
                    // report the first failure.
                    let protocol = WireProtocol::Pipeline { block };
                    let mut resp = Response::ok();
                    for (virt, len) in &regions {
                        if resp.status != Status::Ok {
                            drain(&ep, &config, cn, data_tag, protocol.block_count(*len)).await;
                            continue;
                        }
                        match session.resolve_ptr(DevicePtr(*virt)) {
                            Err(st) => {
                                drain(&ep, &config, cn, data_tag, protocol.block_count(*len)).await;
                                resp = Response::err(st);
                            }
                            Ok(real) => {
                                let r = handle_h2d(
                                    &handle, &ep, &gpu, &pool, &config, &mut stats, cn, real, *len,
                                    protocol, data_tag,
                                )
                                .await;
                                if r.status != Status::Ok {
                                    resp = r;
                                }
                            }
                        }
                    }
                    resp
                }
                Request::PeerSend {
                    src,
                    len,
                    peer,
                    block,
                } => {
                    let valid = match session.resolve_ptr(src) {
                        Ok(real) => gpu
                            .mem()
                            .resolve(real, len)
                            .map(|_| real)
                            .map_err(|e| status_of_gpu_error(&e.into())),
                        Err(st) => Err(st),
                    };
                    match valid {
                        Err(st) => Response::err(st),
                        Ok(real) => {
                            stream_d2h(
                                &handle,
                                &ep,
                                &gpu,
                                &pool,
                                &config,
                                &mut stats,
                                Rank(peer as usize),
                                real,
                                len,
                                WireProtocol::Pipeline { block },
                                ac_tags::PEER_DATA,
                            )
                            .await;
                            Response::ok()
                        }
                    }
                }
                Request::PeerRecv {
                    dst,
                    len,
                    from,
                    block,
                } => {
                    let protocol = WireProtocol::Pipeline { block };
                    match session.resolve_ptr(dst) {
                        Err(st) => {
                            // The peer's data is already in flight; drain it
                            // to keep the channel clean.
                            drain(
                                &ep,
                                &config,
                                Rank(from as usize),
                                ac_tags::PEER_DATA,
                                protocol.block_count(len),
                            )
                            .await;
                            Response::err(st)
                        }
                        Ok(real) => {
                            handle_h2d(
                                &handle,
                                &ep,
                                &gpu,
                                &pool,
                                &config,
                                &mut stats,
                                Rank(from as usize),
                                real,
                                len,
                                protocol,
                                ac_tags::PEER_DATA,
                            )
                            .await
                        }
                    }
                }
                Request::Ping => Response::ok(),
                Request::Shutdown => {
                    // Nothing staged may outlive the daemon.
                    coal.flush_all(&ep).await;
                    coal.respond_now(&ep, cn, resp_tag, Response::ok()).await;
                    health.set_alive(false);
                    return stats;
                }
                _ => unreachable!("batchable requests handled above"),
            }
        };
        drop(exec_span);
        // Remember the outcome so a replayed request (lost response) is
        // answered without re-execution; timeouts and corrupt data phases
        // must re-execute.
        if framed && resp.status != Status::Timeout && resp.status != Status::Corrupt {
            completed.insert(cn, (op_id, resp));
        }
        let ack_span = tele
            .span(&handle, "daemon.ack", || {
                format!("{:?} to {}", resp.status, cn)
            })
            .op(op_id);
        coal.respond(&ep, cn, resp_tag, resp).await;
        drop(ack_span);
    }
}

/// Execute one [`Request::batchable`] command for `cn`'s session: the shared
/// path between ordinary request/response service and in-order stream
/// batches. Stream-virtual pointers (≥ [`STREAM_VIRT_BASE`]) are translated
/// through the session's region table on every use.
#[allow(clippy::too_many_arguments)]
async fn exec_batchable(
    handle: &SimHandle,
    ep: &Endpoint,
    gpu: &VirtualGpu,
    pool: &PinnedPool,
    config: &DaemonConfig,
    stats: &mut DaemonStats,
    session: &mut Session,
    cn: Rank,
    req: Request,
    data_tag: Tag,
) -> Response {
    match req {
        Request::MemAlloc { len } => match gpu.alloc(len).await {
            Ok(ptr) => Response {
                status: Status::Ok,
                value: ptr.0,
            },
            Err(e) => Response::err(status_of_gpu_error(&e)),
        },
        Request::MemAllocAt { virt, len } => {
            let span = len.max(1);
            let overlaps = session
                .regions
                .iter()
                .any(|r| virt < r.virt + r.len.max(1) && r.virt < virt + span);
            if virt < STREAM_VIRT_BASE || overlaps {
                return Response::err(Status::Malformed);
            }
            match gpu.alloc(len).await {
                Ok(real) => {
                    session.regions.push(StreamRegion { virt, len, real });
                    Response {
                        status: Status::Ok,
                        value: real.0,
                    }
                }
                Err(e) => Response::err(status_of_gpu_error(&e)),
            }
        }
        Request::MemFree { ptr } => {
            if ptr.0 >= STREAM_VIRT_BASE {
                // Stream-virtual frees must name a region base exactly.
                let Some(i) = session.regions.iter().position(|r| r.virt == ptr.0) else {
                    return Response::err(Status::InvalidPointer);
                };
                let region = session.regions.swap_remove(i);
                match gpu.free(region.real).await {
                    Ok(()) => Response::ok(),
                    Err(e) => Response::err(status_of_gpu_error(&e)),
                }
            } else {
                match gpu.free(ptr).await {
                    Ok(()) => Response::ok(),
                    Err(e) => Response::err(status_of_gpu_error(&e)),
                }
            }
        }
        Request::MemSet { ptr, len, byte } => match session.resolve_ptr(ptr) {
            Err(st) => Response::err(st),
            Ok(real) => match gpu.memset(real, len, byte).await {
                Ok(()) => Response::ok(),
                Err(e) => Response::err(status_of_gpu_error(&e)),
            },
        },
        Request::MemCpyH2D { dst, len, protocol } => match session.resolve_ptr(dst) {
            Err(st) => {
                // The payload is already in flight; drain it so the next
                // command's data phase pairs correctly.
                drain(ep, config, cn, data_tag, protocol.block_count(len)).await;
                Response::err(st)
            }
            Ok(real) => {
                handle_h2d(
                    handle, ep, gpu, pool, config, stats, cn, real, len, protocol, data_tag,
                )
                .await
            }
        },
        Request::KernelCreate { name } => {
            if gpu.registry().contains(&name) {
                session.kernel = Some(name);
                session.args.clear();
                Response::ok()
            } else {
                Response::err(Status::UnknownKernel)
            }
        }
        Request::KernelSetArgs { args } => {
            session.args = args;
            Response::ok()
        }
        Request::KernelRun { grid, block } => match session.kernel.clone() {
            None => Response::err(Status::NoKernelBound),
            Some(name) => {
                let args = match session.resolve_args(&session.args) {
                    Ok(args) => args,
                    Err(st) => return Response::err(st),
                };
                let cfg = LaunchConfig { grid, block };
                match gpu.launch(&name, cfg, &args).await {
                    Ok(()) => {
                        stats.kernels += 1;
                        Response::ok()
                    }
                    Err(e) => Response::err(status_of_gpu_error(&e)),
                }
            }
        },
        Request::Launch {
            name,
            args,
            grid,
            block,
        } => {
            if !gpu.registry().contains(&name) {
                return Response::err(Status::UnknownKernel);
            }
            // Mirror the 3-call path's session effects so fused and legacy
            // launches are interchangeable mid-session.
            session.kernel = Some(name.clone());
            session.args = args;
            let args = match session.resolve_args(&session.args) {
                Ok(args) => args,
                Err(st) => return Response::err(st),
            };
            let cfg = LaunchConfig { grid, block };
            match gpu.launch(&name, cfg, &args).await {
                Ok(()) => {
                    stats.kernels += 1;
                    Response::ok()
                }
                Err(e) => Response::err(status_of_gpu_error(&e)),
            }
        }
        _ => Response::err(Status::Malformed),
    }
}

/// Hard cap on entries staged per peer before a forced flush: keeps a
/// coalesced frame comfortably eager-sized (nobody posts receives on the
/// CTRL tag, so the unbundler only ever sees eager packets).
const CTRL_BATCH_MAX: usize = 8;

/// Service windows a peer's staging may sit idle (no new entries) before
/// it is force-flushed. Bounds how long one tenant's lone response can be
/// deferred while *other* tenants keep the request queue busy: a
/// continuously-streaming front-end appends to its own staging every
/// window and still batches up to [`CTRL_BATCH_MAX`], but a blocked peer
/// stops appending and drains within this many serviced requests.
const CTRL_STAGE_MAX_AGE: u64 = 2;

/// Per-peer staged control entries plus the service window of the most
/// recent append (for the staleness bound).
struct Staged {
    last_append: u64,
    entries: Vec<(u32, Bytes)>,
}

/// Outgoing control-message path: encodes responses and stream acks
/// through one reusable arena, and — when `ctrl_batch` is on — stages
/// those bound for the same peer so several can ride one
/// [`ControlBatch`] fabric message.
struct Coalescer {
    enabled: bool,
    enc: EncodeBuf,
    /// Service-window counter; advanced by [`Coalescer::tick`] once per
    /// daemon loop iteration.
    window: u64,
    staged: HashMap<Rank, Staged>,
}

impl Coalescer {
    fn new(enabled: bool) -> Self {
        Coalescer {
            enabled,
            enc: EncodeBuf::new(),
            window: 0,
            staged: HashMap::new(),
        }
    }

    /// Send a response: immediately when batching is off, staged otherwise.
    async fn respond(&mut self, ep: &Endpoint, to: Rank, tag: Tag, resp: Response) {
        let bytes = resp.encode_into(&mut self.enc);
        ep.fabric()
            .telemetry()
            .count("wire.encode_bytes", bytes.len() as u64);
        self.dispatch(ep, to, tag, bytes).await;
    }

    /// Send a response that must leave now even under batching (pre-data
    /// responses the peer awaits before its data phase, shutdown acks).
    async fn respond_now(&mut self, ep: &Endpoint, to: Rank, tag: Tag, resp: Response) {
        let bytes = resp.encode_into(&mut self.enc);
        ep.fabric()
            .telemetry()
            .count("wire.encode_bytes", bytes.len() as u64);
        ep.send(to, tag, Payload::from_bytes(bytes)).await;
    }

    /// Send a stream ack: immediately when batching is off, staged otherwise.
    async fn ack(&mut self, ep: &Endpoint, to: Rank, tag: Tag, ack: StreamAck) {
        let bytes = ack.encode_into(&mut self.enc);
        ep.fabric()
            .telemetry()
            .count("wire.encode_bytes", bytes.len() as u64);
        self.dispatch(ep, to, tag, bytes).await;
    }

    async fn dispatch(&mut self, ep: &Endpoint, to: Rank, tag: Tag, bytes: Bytes) {
        if !self.enabled {
            ep.send(to, tag, Payload::from_bytes(bytes)).await;
            return;
        }
        let window = self.window;
        let staged = self.staged.entry(to).or_insert_with(|| Staged {
            last_append: window,
            entries: Vec::new(),
        });
        staged.last_append = window;
        staged.entries.push((tag.0, bytes));
        if staged.entries.len() >= CTRL_BATCH_MAX {
            self.flush_peer(ep, to).await;
        }
    }

    fn has_staged(&self) -> bool {
        !self.staged.is_empty()
    }

    /// Close one service window: advance the window clock and flush any
    /// peer whose staging has not grown for [`CTRL_STAGE_MAX_AGE`]
    /// windows. Called once per daemon loop iteration so a staged entry
    /// can never wait unboundedly behind other peers' traffic — the
    /// queue-idle flush in the main loop only guarantees progress when
    /// the *whole* queue drains.
    async fn tick(&mut self, ep: &Endpoint) {
        self.window += 1;
        if self.staged.is_empty() {
            return;
        }
        let mut stale: Vec<Rank> = self
            .staged
            .iter()
            .filter(|(_, s)| self.window - s.last_append >= CTRL_STAGE_MAX_AGE)
            .map(|(r, _)| *r)
            .collect();
        stale.sort_unstable_by_key(|r| r.0); // deterministic flush order
        for peer in stale {
            self.flush_peer(ep, peer).await;
        }
    }

    /// Flush everything staged — called when the request queue goes idle
    /// (the batching window closes) and before daemon shutdown.
    async fn flush_all(&mut self, ep: &Endpoint) {
        let mut peers: Vec<Rank> = self.staged.keys().copied().collect();
        peers.sort_unstable_by_key(|r| r.0); // deterministic flush order
        for peer in peers {
            self.flush_peer(ep, peer).await;
        }
    }

    async fn flush_peer(&mut self, ep: &Endpoint, to: Rank) {
        let Some(Staged { entries, .. }) = self.staged.remove(&to) else {
            return;
        };
        if entries.len() == 1 {
            // A lone message gains nothing from batching: send it on its
            // own tag, byte-identical to the unbatched path.
            let (tag, bytes) = entries.into_iter().next().expect("len checked");
            ep.send(to, Tag(tag), Payload::from_bytes(bytes)).await;
            return;
        }
        let tele = ep.fabric().telemetry();
        tele.count("wire.ctrl_batched", entries.len() as u64);
        let batch = ControlBatch { entries };
        let bytes = batch.encode_into(&mut self.enc);
        tele.count("wire.encode_bytes", bytes.len() as u64);
        ep.send(to, ac_tags::CTRL, Payload::from_bytes(bytes)).await;
    }
}

/// One data-phase receive, bounded by `config.data_timeout` when set.
async fn recv_data(
    ep: &Endpoint,
    config: &DaemonConfig,
    src_rank: Rank,
    data_tag: Tag,
) -> Option<dacc_fabric::mpi::Envelope> {
    match config.data_timeout {
        Some(t) => ep.recv_timeout(Some(src_rank), Some(data_tag), t).await,
        None => Some(ep.recv(Some(src_rank), Some(data_tag)).await),
    }
}

/// One data-phase send, abandoned after `config.data_timeout` when set
/// (the receiver may have given up on this attempt; a wedged send would
/// hold its pinned-pool slot forever).
async fn send_data(
    ep: &Endpoint,
    config: &DaemonConfig,
    dst_rank: Rank,
    data_tag: Tag,
    payload: Payload,
) {
    match config.data_timeout {
        Some(t) => {
            ep.send_timeout(dst_rank, data_tag, payload, t).await;
        }
        None => ep.send(dst_rank, data_tag, payload).await,
    }
}

/// Discard the in-flight data messages of a rejected transfer, giving up
/// per message after `config.data_timeout` (lost blocks never arrive).
async fn drain(ep: &Endpoint, config: &DaemonConfig, src_rank: Rank, data_tag: Tag, nblocks: u64) {
    for _ in 0..nblocks {
        if recv_data(ep, config, src_rank, data_tag).await.is_none() {
            break;
        }
    }
}

/// Receive `len` bytes from `src_rank` (tagged `data_tag`) and move them to
/// device memory at `dst`.
#[allow(clippy::too_many_arguments)]
async fn handle_h2d(
    handle: &SimHandle,
    ep: &Endpoint,
    gpu: &VirtualGpu,
    pool: &PinnedPool,
    config: &DaemonConfig,
    stats: &mut DaemonStats,
    src_rank: Rank,
    dst: DevicePtr,
    len: u64,
    protocol: WireProtocol,
    data_tag: Tag,
) -> Response {
    let tele = ep.fabric().telemetry();
    let nblocks = protocol.block_count(len);
    // Pre-validate the destination and the block size. On failure the data
    // messages are already in flight; drain and discard them to keep the
    // channel clean. (The memory lock must not be held across the drain:
    // concurrent DMA tasks take the same lock, and the executor is
    // single-threaded.)
    let valid = gpu.mem().resolve(dst, len).map(|_| ());
    let block_ok = match protocol {
        WireProtocol::Pipeline { .. } => protocol.block_size(len) <= config.pinned_buffer,
        WireProtocol::Naive => true,
    };
    if let Err(e) = valid {
        drain(ep, config, src_rank, data_tag, nblocks).await;
        return Response::err(status_of_gpu_error(&e.into()));
    }
    if !block_ok {
        drain(ep, config, src_rank, data_tag, nblocks).await;
        return Response::err(Status::Malformed);
    }
    if len == 0 {
        return Response::ok();
    }
    stats.bytes_in += len;

    match protocol {
        WireProtocol::Naive => {
            // Receive the whole message into main memory first: the host
            // buffer must hold the complete payload (§V.A).
            let t_post = handle.now();
            let env = match recv_data(ep, config, src_rank, data_tag).await {
                Some(env) => env,
                None => return Response::err(Status::Timeout),
            };
            tele.span_at(
                "daemon.recv_block",
                || format!("naive {len}B from {src_rank}"),
                t_post,
                handle.now(),
                Some(len),
                None,
            );
            stats.host_buffer_peak = stats.host_buffer_peak.max(len);
            tele.count("wire.crc_bytes", env.payload.len());
            let data = match open_block(&env.payload) {
                Ok(p) => p,
                Err(_) => {
                    tele.count("daemon.corrupt_blocks", 1);
                    tele.instant(handle, "daemon.corrupt", || {
                        format!("naive {len}B from {src_rank} failed CRC")
                    });
                    return Response::err(Status::Corrupt);
                }
            };
            let _dma_span = tele
                .span(handle, "daemon.dma", || format!("naive {len}B h2d"))
                .bytes(len);
            match gpu.memcpy_h2d(&data, dst, HostMemKind::Pinned).await {
                Ok(()) => Response::ok(),
                Err(e) => Response::err(status_of_gpu_error(&e)),
            }
        }
        WireProtocol::Pipeline { .. } if config.data_timeout.is_some() => {
            // Fault-tolerant path: one bounded receive at a time (no
            // pre-posting) so a lost block aborts the operation instead of
            // wedging the daemon; the front-end sees `Timeout` and retries
            // the whole transfer under a fresh attempt tag.
            let block = protocol.block_size(len);
            stats.host_buffer_peak = stats
                .host_buffer_peak
                .max(config.pinned_buffer * config.pinned_depth as u64);
            let mut dmas = Vec::with_capacity(nblocks as usize);
            let mut offset = 0u64;
            let mut status = Status::Ok;
            while offset < len {
                let bs = block.min(len - offset);
                let slot = pool.acquire(bs).await;
                let t_post = handle.now();
                let env = match recv_data(ep, config, src_rank, data_tag).await {
                    Some(env) => env,
                    None => {
                        status = Status::Timeout;
                        break;
                    }
                };
                tele.span_at(
                    "daemon.recv_block",
                    || format!("block @{offset} ({bs}B) from {src_rank}"),
                    t_post,
                    handle.now(),
                    Some(bs),
                    None,
                );
                handle.delay(config.per_block_cost).await;
                tele.count("wire.crc_bytes", env.payload.len());
                let data = match open_block(&env.payload) {
                    Ok(p) => p,
                    Err(_) => {
                        // Damaged in flight: never DMA it. Keep receiving the
                        // remaining blocks so the channel stays clean, then
                        // report `Corrupt`; the front-end retries the whole
                        // transfer under a fresh attempt tag.
                        tele.count("daemon.corrupt_blocks", 1);
                        tele.instant(handle, "daemon.corrupt", || {
                            format!("block @{offset} ({bs}B) from {src_rank} failed CRC")
                        });
                        if status == Status::Ok {
                            status = Status::Corrupt;
                        }
                        drop(slot);
                        offset += bs;
                        continue;
                    }
                };
                let staging = pool.staging_cost(bs);
                let gpu = gpu.clone();
                let dptr = dst.offset(offset);
                let dma_tele = tele.clone();
                let dma_handle = handle.clone();
                dmas.push(handle.spawn("daemon.h2d.dma", async move {
                    let _dma_span = dma_tele
                        .span(&dma_handle, "daemon.dma", || {
                            format!("block @{offset} ({bs}B) h2d")
                        })
                        .bytes(bs);
                    let result = gpu.memcpy_h2d(&data, dptr, HostMemKind::Pinned).await;
                    drop(slot);
                    result
                }));
                if !staging.is_zero() {
                    handle.delay(staging).await;
                }
                offset += bs;
            }
            for dma in dmas {
                if let Err(e) = dma.await {
                    if status == Status::Ok {
                        status = status_of_gpu_error(&e);
                    }
                }
            }
            Response { status, value: 0 }
        }
        WireProtocol::Pipeline { .. } => {
            let block = protocol.block_size(len);
            stats.host_buffer_peak = stats
                .host_buffer_peak
                .max(config.pinned_buffer * config.pinned_depth as u64);
            let prepost = config.recv_prepost.max(1).min(config.pinned_depth);
            let mut dmas = Vec::with_capacity(nblocks as usize);
            // Receives in flight: posting a receive pre-issues the
            // rendezvous CTS, so `prepost` controls how much of the
            // handshake latency overlaps with earlier blocks' data.
            let mut inflight: std::collections::VecDeque<_> = std::collections::VecDeque::new();
            let mut post_offset = 0u64; // next block to post a receive for
            let mut offset = 0u64; // next block to complete
            let mut corrupt = false;
            while offset < len {
                while post_offset < len && inflight.len() < prepost {
                    let bs = block.min(len - post_offset);
                    // Back-pressure: no free pinned buffer, no receive.
                    let slot = pool.acquire(bs).await;
                    let recv = ep.irecv(Some(src_rank), Some(data_tag));
                    inflight.push_back((recv, slot, bs, handle.now()));
                    post_offset += bs;
                }
                let (recv, slot, bs, t_post) = inflight.pop_front().expect("inflight underflow");
                let env = recv.await;
                tele.span_at(
                    "daemon.recv_block",
                    || format!("block @{offset} ({bs}B) from {src_rank}"),
                    t_post,
                    handle.now(),
                    Some(bs),
                    None,
                );
                handle.delay(config.per_block_cost).await;
                tele.count("wire.crc_bytes", env.payload.len());
                let data = match open_block(&env.payload) {
                    Ok(p) => p,
                    Err(_) => {
                        tele.count("daemon.corrupt_blocks", 1);
                        tele.instant(handle, "daemon.corrupt", || {
                            format!("block @{offset} ({bs}B) from {src_rank} failed CRC")
                        });
                        corrupt = true;
                        drop(slot);
                        offset += bs;
                        continue;
                    }
                };
                let staging = pool.staging_cost(bs);
                let gpu = gpu.clone();
                let dptr = dst.offset(offset);
                let dma_tele = tele.clone();
                let dma_handle = handle.clone();
                dmas.push(handle.spawn("daemon.h2d.dma", async move {
                    let _dma_span = dma_tele
                        .span(&dma_handle, "daemon.dma", || {
                            format!("block @{offset} ({bs}B) h2d")
                        })
                        .bytes(bs);
                    let result = gpu.memcpy_h2d(&data, dptr, HostMemKind::Pinned).await;
                    drop(slot);
                    result
                }));
                // Non-GPUDirect: the staging memcpy occupies the daemon CPU
                // before the DMA can even be posted.
                if !staging.is_zero() {
                    handle.delay(staging).await;
                }
                offset += bs;
            }
            let mut status = if corrupt { Status::Corrupt } else { Status::Ok };
            for dma in dmas {
                if let Err(e) = dma.await {
                    if status == Status::Ok {
                        status = status_of_gpu_error(&e);
                    }
                }
            }
            Response { status, value: 0 }
        }
    }
}

/// Stream `len` device bytes at `src` to `dst_rank` (tagged `data_tag`).
#[allow(clippy::too_many_arguments)]
async fn stream_d2h(
    handle: &SimHandle,
    ep: &Endpoint,
    gpu: &VirtualGpu,
    pool: &PinnedPool,
    config: &DaemonConfig,
    stats: &mut DaemonStats,
    dst_rank: Rank,
    src: DevicePtr,
    len: u64,
    protocol: WireProtocol,
    data_tag: Tag,
) {
    if len == 0 {
        return;
    }
    let tele = ep.fabric().telemetry();
    stats.bytes_out += len;
    match protocol {
        WireProtocol::Naive => {
            stats.host_buffer_peak = stats.host_buffer_peak.max(len);
            let dma_span = tele
                .span(handle, "daemon.dma", || format!("naive {len}B d2h"))
                .bytes(len);
            let payload = gpu
                .memcpy_d2h(src, len, HostMemKind::Pinned)
                .await
                .expect("validated before streaming");
            drop(dma_span);
            let _send_span = tele
                .span(handle, "daemon.send_block", || {
                    format!("naive {len}B to {dst_rank}")
                })
                .bytes(len);
            tele.count("wire.crc_bytes", payload.len() + CRC_TRAILER_BYTES);
            send_data(ep, config, dst_rank, data_tag, seal_block(&payload)).await;
        }
        WireProtocol::Pipeline { .. } => {
            let block = protocol.block_size(len);
            stats.host_buffer_peak = stats
                .host_buffer_peak
                .max(config.pinned_buffer * config.pinned_depth as u64);
            let mut sends = Vec::new();
            let mut offset = 0u64;
            while offset < len {
                let bs = block.min(len - offset);
                let slot = pool.acquire(bs).await;
                let dma_span = tele
                    .span(handle, "daemon.dma", || {
                        format!("block @{offset} ({bs}B) d2h")
                    })
                    .bytes(bs);
                tele.count("wire.crc_bytes", bs + CRC_TRAILER_BYTES);
                let payload = seal_block(
                    &gpu.memcpy_d2h(src.offset(offset), bs, HostMemKind::Pinned)
                        .await
                        .expect("validated before streaming"),
                );
                drop(dma_span);
                let staging = pool.staging_cost(bs);
                if !staging.is_zero() {
                    handle.delay(staging).await;
                }
                handle.delay(config.per_block_cost).await;
                let ep = ep.clone();
                let config = *config;
                let send_tele = tele.clone();
                let send_handle = handle.clone();
                sends.push(handle.spawn("daemon.d2h.send", async move {
                    let _send_span = send_tele
                        .span(&send_handle, "daemon.send_block", || {
                            format!("block @{offset} ({bs}B) to {dst_rank}")
                        })
                        .bytes(bs);
                    send_data(&ep, &config, dst_rank, data_tag, payload).await;
                    drop(slot);
                }));
                offset += bs;
            }
            for s in sends {
                s.await;
            }
        }
    }
}
