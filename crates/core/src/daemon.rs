//! The back-end daemon running on every accelerator (§IV).
//!
//! Receives requests from front-ends over the fabric and executes them on
//! the local GPU through the (virtual) CUDA driver API. Bulk copies use
//! either the naive protocol — receive everything into main memory, then one
//! DMA — or the pipelined protocol: blocks are received into a bounded ring
//! of GPUDirect pinned buffers and DMA'd onward while later blocks are still
//! on the wire.

use std::collections::HashMap;

use dacc_fabric::mpi::{Endpoint, Rank, Tag};
use dacc_fabric::payload::Payload;
use dacc_sim::prelude::*;
use dacc_vgpu::device::{GpuError, HostMemKind, VirtualGpu};
use dacc_vgpu::kernel::{KernelArg, KernelError, LaunchConfig};
use dacc_vgpu::memory::{DevicePtr, MemError};
use dacc_vgpu::pinned::PinnedPool;

use crate::proto::{ac_tags, Request, Response, Status, WireProtocol};

/// Daemon tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct DaemonConfig {
    /// CPU cost to decode and dispatch one request.
    pub request_cost: SimDuration,
    /// CPU cost per pipeline block (progressing MPI, posting the DMA).
    /// This sits between a block's arrival and the posting of the next
    /// receive, so it shows up as the per-block wire gap the paper blames
    /// for small-block overhead at large message sizes.
    pub per_block_cost: SimDuration,
    /// Number of pinned buffers in the GPUDirect ring.
    pub pinned_depth: usize,
    /// Size of each pinned buffer (must cover the largest pipeline block).
    pub pinned_buffer: u64,
    /// Whether GPUDirect NIC/GPU buffer sharing is enabled; when off, every
    /// block pays a host staging copy.
    pub gpudirect: bool,
    /// Number of block receives posted ahead during pipelined H2D
    /// transfers. With 1 (the paper-era behaviour) each block's rendezvous
    /// clear-to-send waits for the previous block's arrival, leaving a
    /// per-block wire gap; larger values pre-issue CTSs and close the gap
    /// (bounded by `pinned_depth`).
    pub recv_prepost: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            request_cost: SimDuration::from_micros(3),
            per_block_cost: SimDuration::from_nanos(400),
            pinned_depth: 4,
            pinned_buffer: 1 << 20,
            gpudirect: true,
            recv_prepost: 1,
        }
    }
}

/// Daemon activity counters, returned when the daemon shuts down.
#[derive(Clone, Copy, Debug, Default)]
pub struct DaemonStats {
    /// Requests served (including the final shutdown).
    pub requests: u64,
    /// Payload bytes received from front-ends (H2D + peer).
    pub bytes_in: u64,
    /// Payload bytes sent to front-ends (D2H + peer).
    pub bytes_out: u64,
    /// Peak host-memory footprint of receive buffers. The naive protocol
    /// needs the full message; the pipeline needs `depth × buffer` no matter
    /// the message size (§V.A).
    pub host_buffer_peak: u64,
    /// Kernels launched on behalf of front-ends.
    pub kernels: u64,
}

#[derive(Default)]
struct Session {
    kernel: Option<String>,
    args: Vec<KernelArg>,
}

fn status_of_gpu_error(e: &GpuError) -> Status {
    match e {
        GpuError::Mem(MemError::OutOfMemory { .. }) => Status::OutOfMemory,
        GpuError::Mem(MemError::InvalidPointer(_)) | GpuError::Mem(MemError::NotABase(_)) => {
            Status::InvalidPointer
        }
        GpuError::Mem(MemError::OutOfBounds { .. }) => Status::OutOfBounds,
        GpuError::Kernel(KernelError::UnknownKernel(_)) => Status::UnknownKernel,
        GpuError::Kernel(KernelError::BadArg(_)) => Status::BadArgs,
        GpuError::Kernel(KernelError::Mem(_)) => Status::OutOfBounds,
        GpuError::Kernel(KernelError::Failed(_)) => Status::KernelFailed,
    }
}

/// Run a back-end daemon on `ep`, driving `gpu`, until a front-end sends
/// `Shutdown`. Returns the daemon's activity counters.
pub async fn run_daemon(ep: Endpoint, gpu: VirtualGpu, config: DaemonConfig) -> DaemonStats {
    run_daemon_traced(ep, gpu, config, Tracer::disabled()).await
}

fn request_kind(req: &Request) -> &'static str {
    match req {
        Request::MemAlloc { .. } => "MemAlloc",
        Request::MemFree { .. } => "MemFree",
        Request::MemCpyH2D { .. } => "MemCpyH2D",
        Request::MemCpyD2H { .. } => "MemCpyD2H",
        Request::KernelCreate { .. } => "KernelCreate",
        Request::KernelSetArgs { .. } => "KernelSetArgs",
        Request::KernelRun { .. } => "KernelRun",
        Request::PeerSend { .. } => "PeerSend",
        Request::PeerRecv { .. } => "PeerRecv",
        Request::MemSet { .. } => "MemSet",
        Request::Ping => "Ping",
        Request::Shutdown => "Shutdown",
    }
}

/// [`run_daemon`] with an event tracer: every request is recorded as a
/// `daemon.request` event (`<Kind> from rankN`).
pub async fn run_daemon_traced(
    ep: Endpoint,
    gpu: VirtualGpu,
    config: DaemonConfig,
    tracer: Tracer,
) -> DaemonStats {
    let handle = ep.fabric().handle().clone();
    let pool = PinnedPool::new(
        &handle,
        config.pinned_depth,
        config.pinned_buffer,
        config.gpudirect,
        gpu.params().staging_rate,
    );
    let mut stats = DaemonStats::default();
    let mut sessions: HashMap<Rank, Session> = HashMap::new();

    loop {
        let env = ep.recv(None, Some(ac_tags::REQUEST)).await;
        let cn = env.src;
        stats.requests += 1;
        let req = match env.payload.bytes().map(|b| Request::decode(b)) {
            Some(Ok(r)) => r,
            _ => {
                respond(&ep, cn, Response::err(Status::Malformed)).await;
                continue;
            }
        };
        handle.delay(config.request_cost).await;
        tracer.record(&handle, "daemon.request", || {
            format!("{} from {}", request_kind(&req), cn)
        });

        match req {
            Request::MemAlloc { len } => {
                let resp = match gpu.alloc(len).await {
                    Ok(ptr) => Response {
                        status: Status::Ok,
                        value: ptr.0,
                    },
                    Err(e) => Response::err(status_of_gpu_error(&e)),
                };
                respond(&ep, cn, resp).await;
            }
            Request::MemFree { ptr } => {
                let resp = match gpu.free(ptr).await {
                    Ok(()) => Response::ok(),
                    Err(e) => Response::err(status_of_gpu_error(&e)),
                };
                respond(&ep, cn, resp).await;
            }
            Request::MemCpyH2D { dst, len, protocol } => {
                let resp = handle_h2d(
                    &handle, &ep, &gpu, &pool, &config, &mut stats, cn, dst, len, protocol,
                    ac_tags::DATA,
                )
                .await;
                respond(&ep, cn, resp).await;
            }
            Request::MemCpyD2H { src, len, protocol } => {
                // Validate before streaming so the front-end knows whether
                // data messages will follow the response.
                let valid = gpu.mem().resolve(src, len).map(|_| ());
                let block_ok = match protocol {
                    WireProtocol::Pipeline { .. } => {
                        protocol.block_size(len) <= config.pinned_buffer
                    }
                    WireProtocol::Naive => true,
                };
                match valid {
                    Err(e) => {
                        respond(&ep, cn, Response::err(status_of_gpu_error(&e.into()))).await;
                    }
                    Ok(()) if !block_ok => {
                        respond(&ep, cn, Response::err(Status::Malformed)).await;
                    }
                    Ok(()) => {
                        respond(&ep, cn, Response::ok()).await;
                        stream_d2h(
                            &handle, &ep, &gpu, &pool, &config, &mut stats, cn, src, len,
                            protocol,
                            ac_tags::DATA,
                        )
                        .await;
                    }
                }
            }
            Request::KernelCreate { name } => {
                let resp = if gpu.registry().contains(&name) {
                    let session = sessions.entry(cn).or_default();
                    session.kernel = Some(name);
                    session.args.clear();
                    Response::ok()
                } else {
                    Response::err(Status::UnknownKernel)
                };
                respond(&ep, cn, resp).await;
            }
            Request::KernelSetArgs { args } => {
                sessions.entry(cn).or_default().args = args;
                respond(&ep, cn, Response::ok()).await;
            }
            Request::KernelRun { grid, block } => {
                let session = sessions.entry(cn).or_default();
                let resp = match session.kernel.clone() {
                    None => Response::err(Status::NoKernelBound),
                    Some(name) => {
                        let cfg = LaunchConfig { grid, block };
                        let args = session.args.clone();
                        match gpu.launch(&name, cfg, &args).await {
                            Ok(()) => {
                                stats.kernels += 1;
                                Response::ok()
                            }
                            Err(e) => Response::err(status_of_gpu_error(&e)),
                        }
                    }
                };
                respond(&ep, cn, resp).await;
            }
            Request::PeerSend {
                src,
                len,
                peer,
                block,
            } => {
                let valid = gpu.mem().resolve(src, len).map(|_| ());
                let resp = match valid {
                    Err(e) => Response::err(status_of_gpu_error(&e.into())),
                    Ok(()) => {
                        stream_d2h(
                            &handle,
                            &ep,
                            &gpu,
                            &pool,
                            &config,
                            &mut stats,
                            Rank(peer as usize),
                            src,
                            len,
                            WireProtocol::Pipeline { block },
                            ac_tags::PEER_DATA,
                        )
                        .await;
                        Response::ok()
                    }
                };
                respond(&ep, cn, resp).await;
            }
            Request::PeerRecv {
                dst,
                len,
                from,
                block,
            } => {
                let resp = handle_h2d(
                    &handle,
                    &ep,
                    &gpu,
                    &pool,
                    &config,
                    &mut stats,
                    Rank(from as usize),
                    dst,
                    len,
                    WireProtocol::Pipeline { block },
                    ac_tags::PEER_DATA,
                )
                .await;
                respond(&ep, cn, resp).await;
            }
            Request::MemSet { ptr, len, byte } => {
                let resp = match gpu.memset(ptr, len, byte).await {
                    Ok(()) => Response::ok(),
                    Err(e) => Response::err(status_of_gpu_error(&e)),
                };
                respond(&ep, cn, resp).await;
            }
            Request::Ping => {
                respond(&ep, cn, Response::ok()).await;
            }
            Request::Shutdown => {
                respond(&ep, cn, Response::ok()).await;
                return stats;
            }
        }
    }
}

async fn respond(ep: &Endpoint, to: Rank, resp: Response) {
    ep.send(to, ac_tags::RESPONSE, Payload::from_vec(resp.encode()))
        .await;
}

/// Receive `len` bytes from `src_rank` (tagged `data_tag`) and move them to
/// device memory at `dst`.
#[allow(clippy::too_many_arguments)]
async fn handle_h2d(
    handle: &SimHandle,
    ep: &Endpoint,
    gpu: &VirtualGpu,
    pool: &PinnedPool,
    config: &DaemonConfig,
    stats: &mut DaemonStats,
    src_rank: Rank,
    dst: DevicePtr,
    len: u64,
    protocol: WireProtocol,
    data_tag: Tag,
) -> Response {
    let nblocks = protocol.block_count(len);
    // Pre-validate the destination and the block size. On failure the data
    // messages are already in flight; drain and discard them to keep the
    // channel clean. (The memory lock must not be held across the drain:
    // concurrent DMA tasks take the same lock, and the executor is
    // single-threaded.)
    let valid = gpu.mem().resolve(dst, len).map(|_| ());
    let block_ok = match protocol {
        WireProtocol::Pipeline { .. } => protocol.block_size(len) <= config.pinned_buffer,
        WireProtocol::Naive => true,
    };
    if let Err(e) = valid {
        for _ in 0..nblocks {
            ep.recv(Some(src_rank), Some(data_tag)).await;
        }
        return Response::err(status_of_gpu_error(&e.into()));
    }
    if !block_ok {
        for _ in 0..nblocks {
            ep.recv(Some(src_rank), Some(data_tag)).await;
        }
        return Response::err(Status::Malformed);
    }
    if len == 0 {
        return Response::ok();
    }
    stats.bytes_in += len;

    match protocol {
        WireProtocol::Naive => {
            // Receive the whole message into main memory first: the host
            // buffer must hold the complete payload (§V.A).
            let env = ep.recv(Some(src_rank), Some(data_tag)).await;
            stats.host_buffer_peak = stats.host_buffer_peak.max(len);
            match gpu.memcpy_h2d(&env.payload, dst, HostMemKind::Pinned).await {
                Ok(()) => Response::ok(),
                Err(e) => Response::err(status_of_gpu_error(&e)),
            }
        }
        WireProtocol::Pipeline { .. } => {
            let block = protocol.block_size(len);
            stats.host_buffer_peak = stats
                .host_buffer_peak
                .max(config.pinned_buffer * config.pinned_depth as u64);
            let prepost = config.recv_prepost.max(1).min(config.pinned_depth);
            let mut dmas = Vec::with_capacity(nblocks as usize);
            // Receives in flight: posting a receive pre-issues the
            // rendezvous CTS, so `prepost` controls how much of the
            // handshake latency overlaps with earlier blocks' data.
            let mut inflight: std::collections::VecDeque<_> = std::collections::VecDeque::new();
            let mut post_offset = 0u64; // next block to post a receive for
            let mut offset = 0u64; // next block to complete
            while offset < len {
                while post_offset < len && inflight.len() < prepost {
                    let bs = block.min(len - post_offset);
                    // Back-pressure: no free pinned buffer, no receive.
                    let slot = pool.acquire(bs).await;
                    let recv = ep.irecv(Some(src_rank), Some(data_tag));
                    inflight.push_back((recv, slot, bs));
                    post_offset += bs;
                }
                let (recv, slot, bs) = inflight.pop_front().expect("inflight underflow");
                let env = recv.await;
                handle.delay(config.per_block_cost).await;
                let staging = pool.staging_cost(bs);
                let gpu = gpu.clone();
                let dptr = dst.offset(offset);
                dmas.push(handle.spawn("daemon.h2d.dma", async move {
                    let result = gpu.memcpy_h2d(&env.payload, dptr, HostMemKind::Pinned).await;
                    drop(slot);
                    result
                }));
                // Non-GPUDirect: the staging memcpy occupies the daemon CPU
                // before the DMA can even be posted.
                if !staging.is_zero() {
                    handle.delay(staging).await;
                }
                offset += bs;
            }
            let mut status = Status::Ok;
            for dma in dmas {
                if let Err(e) = dma.await {
                    if status == Status::Ok {
                        status = status_of_gpu_error(&e);
                    }
                }
            }
            Response {
                status,
                value: 0,
            }
        }
    }
}

/// Stream `len` device bytes at `src` to `dst_rank` (tagged `data_tag`).
#[allow(clippy::too_many_arguments)]
async fn stream_d2h(
    handle: &SimHandle,
    ep: &Endpoint,
    gpu: &VirtualGpu,
    pool: &PinnedPool,
    config: &DaemonConfig,
    stats: &mut DaemonStats,
    dst_rank: Rank,
    src: DevicePtr,
    len: u64,
    protocol: WireProtocol,
    data_tag: Tag,
) {
    if len == 0 {
        return;
    }
    stats.bytes_out += len;
    match protocol {
        WireProtocol::Naive => {
            stats.host_buffer_peak = stats.host_buffer_peak.max(len);
            let payload = gpu
                .memcpy_d2h(src, len, HostMemKind::Pinned)
                .await
                .expect("validated before streaming");
            ep.send(dst_rank, data_tag, payload).await;
        }
        WireProtocol::Pipeline { .. } => {
            let block = protocol.block_size(len);
            stats.host_buffer_peak = stats
                .host_buffer_peak
                .max(config.pinned_buffer * config.pinned_depth as u64);
            let mut sends = Vec::new();
            let mut offset = 0u64;
            while offset < len {
                let bs = block.min(len - offset);
                let slot = pool.acquire(bs).await;
                let payload = gpu
                    .memcpy_d2h(src.offset(offset), bs, HostMemKind::Pinned)
                    .await
                    .expect("validated before streaming");
                let staging = pool.staging_cost(bs);
                if !staging.is_zero() {
                    handle.delay(staging).await;
                }
                handle.delay(config.per_block_cost).await;
                let ep = ep.clone();
                sends.push(handle.spawn("daemon.d2h.send", async move {
                    ep.send(dst_rank, data_tag, payload).await;
                    drop(slot);
                }));
                offset += bs;
            }
            for s in sends {
                s.await;
            }
        }
    }
}
