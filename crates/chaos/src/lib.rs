//! `dacc-chaos` — deterministic, seeded fault injection.
//!
//! A [`ChaosPlane`] implements [`FaultHook`] and is installed into the
//! topology (per-transmission verdicts) and the daemons (per-request
//! process state) via `build_cluster_chaos`. Faults are declared up front
//! in a [`FaultSchedule`] — *inject X at virtual time T* or *after N fabric
//! transmissions* — and every probabilistic decision draws from a seeded
//! [`SimRng`], so a chaos run is a pure function of `(seed, schedule,
//! workload)`: two runs with the same inputs produce the identical fault
//! sequence, event for event. That determinism is what makes failover bugs
//! reproducible and is regression-tested in `tests/`.
//!
//! The plane only *decides*; the effects live where the state lives: the
//! topology charges the sender and suppresses delivery on `Drop`, stretches
//! serialization on `Degrade`, and the daemon loop returns (crash) or
//! pauses (hang) on process faults. Crash and hang verdicts are therefore
//! observed at the daemon's next request, which keeps them deterministic
//! with respect to the request stream rather than racing a timer.

#![warn(missing_docs)]

use std::sync::Arc;

use dacc_sim::fault::{FaultHook, LinkFault, ProcessFault};
use dacc_sim::rng::SimRng;
use dacc_sim::time::{SimDuration, SimTime};
use parking_lot::Mutex;

/// When a scheduled fault arms.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Trigger {
    /// Arm at virtual time `t` (first hook consultation at or after `t`).
    At(SimTime),
    /// Arm once the plane has observed this many fabric transmissions.
    AfterEvents(u64),
}

/// A fault to inject. Link faults select traffic by optional source and
/// destination rank (`None` = any); process faults select a daemon by rank.
#[derive(Clone, PartialEq, Debug)]
pub enum Fault {
    /// Drop the next `count` matching messages outright, then disarm.
    DropMessages {
        /// Source rank filter (`None` matches all).
        src: Option<usize>,
        /// Destination rank filter (`None` matches all).
        dst: Option<usize>,
        /// How many matching messages to drop.
        count: u32,
    },
    /// Drop each matching message with probability `p` (seeded; stays
    /// armed once triggered).
    DropRandomly {
        /// Source rank filter (`None` matches all).
        src: Option<usize>,
        /// Destination rank filter (`None` matches all).
        dst: Option<usize>,
        /// Per-message drop probability in `[0, 1]`.
        p: f64,
    },
    /// Multiply matching messages' serialization time by `factor` (stays
    /// armed once triggered).
    DegradeLink {
        /// Source rank filter (`None` matches all).
        src: Option<usize>,
        /// Destination rank filter (`None` matches all).
        dst: Option<usize>,
        /// Serialization-time multiplier (> 1 slows the link).
        factor: f64,
    },
    /// Flip one bit in the `nth` matching message (1-based, counted from
    /// arming), then disarm. Timing is untouched — the damaged payload is
    /// delivered on schedule, so only receiver-side integrity checks (CRC
    /// trailers) can tell, making this the adversary for end-to-end payload
    /// verification.
    CorruptPayload {
        /// Source rank filter (`None` matches all).
        src: Option<usize>,
        /// Destination rank filter (`None` matches all).
        dst: Option<usize>,
        /// Which matching message to corrupt (1 = the next one).
        nth: u64,
    },
    /// Kill the daemon at `rank`: it consumes its next request and returns
    /// without responding, permanently (the accelerator is dead).
    CrashProcess {
        /// The daemon's fabric rank.
        rank: usize,
    },
    /// Pause the daemon at `rank` for `pause` before it serves its next
    /// request, once, then disarm (a transient stall, not a death).
    HangProcess {
        /// The daemon's fabric rank.
        rank: usize,
        /// Stall duration.
        pause: SimDuration,
    },
    /// Kill the compute node at `node`: every message to or from it is
    /// dropped, permanently. Models a whole-node death — the client
    /// process goes silent without releasing anything, which is exactly
    /// the lease-expiry reclamation scenario (daemons on other nodes keep
    /// heartbeating).
    CrashComputeNode {
        /// The dead node's id (equals its rank in the standard layout).
        node: usize,
    },
    /// Suppress the next `count` heartbeats from the daemon at `rank`,
    /// then heal. The daemon keeps serving requests — only its liveness
    /// beats vanish, driving the ARM's Suspect → Quarantined → probe →
    /// reintegration path without any real failure.
    MuteHeartbeats {
        /// The daemon's fabric rank.
        rank: usize,
        /// How many consecutive beats to mute.
        count: u32,
    },
    /// A flaky accelerator: its daemon's heartbeats cycle `up` delivered
    /// then `down` muted, indefinitely (by beat index, so the pattern is
    /// deterministic). Repeated quarantines exhaust the ARM's
    /// re-quarantine budget and brand the accelerator permanently broken.
    FlakyAccel {
        /// The daemon's fabric rank.
        rank: usize,
        /// Beats delivered per cycle.
        up: u64,
        /// Beats muted per cycle.
        down: u64,
    },
    /// Sever one physical link (by topology link id): every frame routed
    /// over it is lost after serializing, permanently. Unlike
    /// [`Fault::DropMessages`] this is addressed at the *wire*, not the
    /// endpoint pair — cutting a fat-tree uplink blackholes every flow that
    /// routes through it while same-edge traffic keeps flowing.
    CutLink {
        /// The topology link id to sever.
        link: usize,
    },
    /// Multiply the serialization time of every frame crossing one
    /// physical link by `factor` (> 1 models a degraded wire), permanently
    /// once armed.
    SlowLink {
        /// The topology link id to slow.
        link: usize,
        /// Serialization-time multiplier.
        factor: f64,
    },
}

impl Fault {
    /// Shorthand: kill the accelerator daemon at `rank`.
    pub fn kill_daemon(rank: usize) -> Fault {
        Fault::CrashProcess { rank }
    }
}

fn link_matches(src_sel: Option<usize>, dst_sel: Option<usize>, src: usize, dst: usize) -> bool {
    src_sel.is_none_or(|s| s == src) && dst_sel.is_none_or(|d| d == dst)
}

/// A declarative fault plan: `(trigger, fault)` pairs, built fluently.
///
/// ```
/// use dacc_chaos::{Fault, FaultSchedule};
/// use dacc_sim::time::{SimDuration, SimTime};
///
/// let schedule = FaultSchedule::new()
///     .after_events(100, Fault::DropMessages { src: None, dst: None, count: 3 })
///     .at(
///         SimTime::ZERO + SimDuration::from_millis(2),
///         Fault::kill_daemon(2),
///     );
/// assert_eq!(schedule.len(), 2);
/// ```
#[derive(Clone, Default, Debug)]
pub struct FaultSchedule {
    entries: Vec<(Trigger, Fault)>,
}

impl FaultSchedule {
    /// An empty schedule (a chaos plane over it injects nothing).
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Arm `fault` at virtual time `t`.
    pub fn at(mut self, t: SimTime, fault: Fault) -> Self {
        self.entries.push((Trigger::At(t), fault));
        self
    }

    /// Arm `fault` after `n` observed fabric transmissions.
    pub fn after_events(mut self, n: u64, fault: Fault) -> Self {
        self.entries.push((Trigger::AfterEvents(n), fault));
        self
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Counters of what the plane has actually injected.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct ChaosCounters {
    /// Fabric transmissions observed.
    pub events: u64,
    /// Messages dropped.
    pub drops: u64,
    /// Messages degraded.
    pub degrades: u64,
    /// Messages delivered with a flipped bit.
    pub corruptions: u64,
    /// Crash verdicts returned (one per request the dead daemon consumed).
    pub crashes: u64,
    /// Hang verdicts returned.
    pub hangs: u64,
    /// Heartbeats suppressed before reaching the fabric.
    pub muted_beats: u64,
}

struct State {
    pending: Vec<(Trigger, Fault)>,
    active: Vec<Fault>,
    rng: SimRng,
    counters: ChaosCounters,
}

/// The seeded fault-injection plane (see crate docs).
pub struct ChaosPlane {
    state: Mutex<State>,
}

impl ChaosPlane {
    /// Build a plane over `schedule`; `seed` drives every probabilistic
    /// decision ([`Fault::DropRandomly`]).
    pub fn new(seed: u64, schedule: FaultSchedule) -> Arc<Self> {
        Arc::new(ChaosPlane {
            state: Mutex::new(State {
                pending: schedule.entries,
                active: Vec::new(),
                rng: SimRng::derive(seed, "chaos"),
                counters: ChaosCounters::default(),
            }),
        })
    }

    /// What has been injected so far.
    pub fn counters(&self) -> ChaosCounters {
        self.state.lock().counters
    }

    /// Arm `fault` immediately, bypassing the schedule. Test drivers use
    /// this for faults whose right moment is only known at runtime — e.g.
    /// "kill the daemon now that the checkpoint completed" — where no event
    /// count or virtual time can be pinned in advance.
    pub fn inject(&self, fault: Fault) {
        self.state.lock().active.push(fault);
    }
}

fn arm_due(st: &mut State, now: SimTime) {
    let events = st.counters.events;
    let mut i = 0;
    while i < st.pending.len() {
        let due = match st.pending[i].0 {
            Trigger::At(t) => now >= t,
            Trigger::AfterEvents(n) => events >= n,
        };
        if due {
            let (_, fault) = st.pending.remove(i);
            st.active.push(fault);
        } else {
            i += 1;
        }
    }
}

impl FaultHook for ChaosPlane {
    fn on_transmit(&self, src: usize, dst: usize, _payload_bytes: u64, now: SimTime) -> LinkFault {
        let mut st = self.state.lock();
        st.counters.events += 1;
        arm_due(&mut st, now);
        // A dead node blackholes everything first; then counted drops take
        // priority over degradation; first matching armed fault of each
        // kind decides.
        if st
            .active
            .iter()
            .any(|f| matches!(f, Fault::CrashComputeNode { node } if *node == src || *node == dst))
        {
            st.counters.drops += 1;
            return LinkFault::Drop;
        }
        for i in 0..st.active.len() {
            match st.active[i].clone() {
                Fault::DropMessages {
                    src: s,
                    dst: d,
                    count,
                } if link_matches(s, d, src, dst) => {
                    if count <= 1 {
                        st.active.remove(i);
                    } else if let Fault::DropMessages { count, .. } = &mut st.active[i] {
                        *count -= 1;
                    }
                    st.counters.drops += 1;
                    return LinkFault::Drop;
                }
                Fault::DropRandomly { src: s, dst: d, p }
                    if link_matches(s, d, src, dst) && st.rng.uniform() < p =>
                {
                    st.counters.drops += 1;
                    return LinkFault::Drop;
                }
                _ => {}
            }
        }
        // Corruption: count matching deliveries down to the nth, damage it,
        // disarm. Runs after drops (a dropped message has no bits left to
        // flip) and before degradation (the damaged frame keeps its timing).
        for i in 0..st.active.len() {
            if let Fault::CorruptPayload {
                src: s,
                dst: d,
                nth,
            } = st.active[i].clone()
            {
                if link_matches(s, d, src, dst) {
                    if nth <= 1 {
                        st.active.remove(i);
                        st.counters.corruptions += 1;
                        return LinkFault::Corrupt;
                    } else if let Fault::CorruptPayload { nth, .. } = &mut st.active[i] {
                        *nth -= 1;
                    }
                    break;
                }
            }
        }
        for f in &st.active {
            if let Fault::DegradeLink {
                src: s,
                dst: d,
                factor,
            } = *f
            {
                if link_matches(s, d, src, dst) {
                    st.counters.degrades += 1;
                    return LinkFault::Degrade(factor);
                }
            }
        }
        LinkFault::Deliver
    }

    fn on_link(&self, link: usize, now: SimTime) -> LinkFault {
        // Note: deliberately does NOT advance the `events` counter —
        // `AfterEvents` triggers count messages (on_transmit calls), not
        // per-link consultations, so schedules stay stable across
        // topologies with different route lengths. No seeded randomness is
        // drawn here either, for the same reason.
        let mut st = self.state.lock();
        arm_due(&mut st, now);
        if st
            .active
            .iter()
            .any(|f| matches!(f, Fault::CutLink { link: l } if *l == link))
        {
            st.counters.drops += 1;
            return LinkFault::Drop;
        }
        for f in &st.active {
            if let Fault::SlowLink { link: l, factor } = *f {
                if l == link {
                    st.counters.degrades += 1;
                    return LinkFault::Degrade(factor);
                }
            }
        }
        LinkFault::Deliver
    }

    fn process_state(&self, process: usize, now: SimTime) -> ProcessFault {
        let mut st = self.state.lock();
        arm_due(&mut st, now);
        if st
            .active
            .iter()
            .any(|f| matches!(f, Fault::CrashProcess { rank } if *rank == process))
        {
            st.counters.crashes += 1;
            return ProcessFault::Crash;
        }
        if let Some(i) = st
            .active
            .iter()
            .position(|f| matches!(f, Fault::HangProcess { rank, .. } if *rank == process))
        {
            let Fault::HangProcess { pause, .. } = st.active.remove(i) else {
                unreachable!()
            };
            st.counters.hangs += 1;
            return ProcessFault::Hang(pause);
        }
        ProcessFault::Healthy
    }

    fn heartbeat(&self, process: usize, beat: u64, now: SimTime) -> bool {
        let mut st = self.state.lock();
        arm_due(&mut st, now);
        for i in 0..st.active.len() {
            match st.active[i] {
                Fault::MuteHeartbeats { rank, count } if rank == process => {
                    if count <= 1 {
                        st.active.remove(i);
                    } else if let Fault::MuteHeartbeats { count, .. } = &mut st.active[i] {
                        *count -= 1;
                    }
                    st.counters.muted_beats += 1;
                    return false;
                }
                Fault::FlakyAccel { rank, up, down } if rank == process => {
                    if beat % (up + down) >= up {
                        st.counters.muted_beats += 1;
                        return false;
                    }
                    return true;
                }
                _ => {}
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn counted_drops_disarm_after_exhaustion() {
        let plane = ChaosPlane::new(
            1,
            FaultSchedule::new().after_events(
                2,
                Fault::DropMessages {
                    src: Some(1),
                    dst: Some(2),
                    count: 2,
                },
            ),
        );
        // Events 1: not armed yet. Event 2 arms it (>= 2) and drops.
        assert_eq!(plane.on_transmit(1, 2, 64, t(0)), LinkFault::Deliver);
        assert_eq!(plane.on_transmit(1, 2, 64, t(1)), LinkFault::Drop);
        // Non-matching traffic unaffected.
        assert_eq!(plane.on_transmit(2, 1, 64, t(2)), LinkFault::Deliver);
        assert_eq!(plane.on_transmit(1, 2, 64, t(3)), LinkFault::Drop);
        // Exhausted.
        assert_eq!(plane.on_transmit(1, 2, 64, t(4)), LinkFault::Deliver);
        assert_eq!(plane.counters().drops, 2);
    }

    #[test]
    fn time_triggered_degradation_and_crash() {
        let plane = ChaosPlane::new(
            7,
            FaultSchedule::new()
                .at(
                    t(10),
                    Fault::DegradeLink {
                        src: None,
                        dst: Some(3),
                        factor: 4.0,
                    },
                )
                .at(t(20), Fault::kill_daemon(3))
                .at(
                    t(20),
                    Fault::HangProcess {
                        rank: 4,
                        pause: SimDuration::from_micros(50),
                    },
                ),
        );
        assert_eq!(plane.on_transmit(0, 3, 64, t(5)), LinkFault::Deliver);
        assert_eq!(plane.on_transmit(0, 3, 64, t(10)), LinkFault::Degrade(4.0));
        assert_eq!(plane.process_state(3, t(15)), ProcessFault::Healthy);
        assert_eq!(plane.process_state(3, t(20)), ProcessFault::Crash);
        // Crash is permanent; hang fires once then disarms.
        assert_eq!(plane.process_state(3, t(30)), ProcessFault::Crash);
        assert_eq!(
            plane.process_state(4, t(30)),
            ProcessFault::Hang(SimDuration::from_micros(50))
        );
        assert_eq!(plane.process_state(4, t(31)), ProcessFault::Healthy);
    }

    #[test]
    fn crashed_node_blackholes_both_directions() {
        let plane = ChaosPlane::new(
            3,
            FaultSchedule::new().at(t(10), Fault::CrashComputeNode { node: 1 }),
        );
        assert_eq!(plane.on_transmit(1, 2, 64, t(5)), LinkFault::Deliver);
        assert_eq!(plane.on_transmit(1, 2, 64, t(10)), LinkFault::Drop);
        assert_eq!(plane.on_transmit(0, 1, 64, t(11)), LinkFault::Drop);
        // Unrelated traffic flows.
        assert_eq!(plane.on_transmit(0, 2, 64, t(12)), LinkFault::Deliver);
        // Permanent.
        assert_eq!(plane.on_transmit(2, 1, 64, t(9999)), LinkFault::Drop);
        assert_eq!(plane.counters().drops, 3);
    }

    #[test]
    fn corrupt_payload_hits_the_nth_match_then_disarms() {
        let plane = ChaosPlane::new(
            5,
            FaultSchedule::new().at(
                t(0),
                Fault::CorruptPayload {
                    src: Some(1),
                    dst: Some(2),
                    nth: 3,
                },
            ),
        );
        // First two matches pass; interleaved non-matching traffic ignored.
        assert_eq!(plane.on_transmit(1, 2, 64, t(1)), LinkFault::Deliver);
        assert_eq!(plane.on_transmit(2, 1, 64, t(2)), LinkFault::Deliver);
        assert_eq!(plane.on_transmit(1, 2, 64, t(3)), LinkFault::Deliver);
        // Third match is damaged, then the fault disarms.
        assert_eq!(plane.on_transmit(1, 2, 64, t(4)), LinkFault::Corrupt);
        assert_eq!(plane.on_transmit(1, 2, 64, t(5)), LinkFault::Deliver);
        assert_eq!(plane.counters().corruptions, 1);
    }

    #[test]
    fn muted_heartbeats_heal_after_count() {
        let plane = ChaosPlane::new(
            3,
            FaultSchedule::new().at(t(0), Fault::MuteHeartbeats { rank: 2, count: 2 }),
        );
        assert!(plane.heartbeat(3, 0, t(1)), "other rank beats freely");
        assert!(!plane.heartbeat(2, 0, t(1)));
        assert!(!plane.heartbeat(2, 1, t(2)));
        assert!(plane.heartbeat(2, 2, t(3)), "healed after count");
        assert_eq!(plane.counters().muted_beats, 2);
    }

    #[test]
    fn flaky_accel_mutes_cyclically_by_beat() {
        let plane = ChaosPlane::new(
            3,
            FaultSchedule::new().at(
                t(0),
                Fault::FlakyAccel {
                    rank: 2,
                    up: 2,
                    down: 3,
                },
            ),
        );
        let pattern: Vec<bool> = (0..10).map(|b| plane.heartbeat(2, b, t(b))).collect();
        assert_eq!(
            pattern,
            vec![true, true, false, false, false, true, true, false, false, false]
        );
    }

    #[test]
    fn link_faults_address_wires_not_endpoint_pairs() {
        let plane = ChaosPlane::new(
            1,
            FaultSchedule::new()
                .at(t(10), Fault::CutLink { link: 12 })
                .at(
                    t(10),
                    Fault::SlowLink {
                        link: 13,
                        factor: 3.0,
                    },
                ),
        );
        // Before arming, every link delivers.
        assert_eq!(plane.on_link(12, t(5)), LinkFault::Deliver);
        // Cut and slowed links answer per-wire; others stay healthy.
        assert_eq!(plane.on_link(12, t(10)), LinkFault::Drop);
        assert_eq!(plane.on_link(13, t(11)), LinkFault::Degrade(3.0));
        assert_eq!(plane.on_link(14, t(12)), LinkFault::Deliver);
        // Permanent once armed.
        assert_eq!(plane.on_link(12, t(9999)), LinkFault::Drop);
        // Per-link consultations never advance the message-event counter.
        assert_eq!(plane.counters().events, 0);
        assert_eq!(plane.counters().drops, 2);
        assert_eq!(plane.counters().degrades, 1);
    }

    #[test]
    fn same_seed_same_schedule_same_verdicts() {
        let schedule = FaultSchedule::new().after_events(
            1,
            Fault::DropRandomly {
                src: None,
                dst: None,
                p: 0.3,
            },
        );
        let a = ChaosPlane::new(42, schedule.clone());
        let b = ChaosPlane::new(42, schedule.clone());
        let c = ChaosPlane::new(43, schedule);
        let va: Vec<LinkFault> = (0..256)
            .map(|i| a.on_transmit(i % 5, (i + 1) % 5, 128, t(i as u64)))
            .collect();
        let vb: Vec<LinkFault> = (0..256)
            .map(|i| b.on_transmit(i % 5, (i + 1) % 5, 128, t(i as u64)))
            .collect();
        let vc: Vec<LinkFault> = (0..256)
            .map(|i| c.on_transmit(i % 5, (i + 1) % 5, 128, t(i as u64)))
            .collect();
        assert_eq!(va, vb, "same seed must reproduce the fault sequence");
        assert_ne!(vc, va, "a different seed must explore a different sequence");
        assert!(va.contains(&LinkFault::Drop));
        assert!(va.contains(&LinkFault::Deliver));
    }
}
