//! Functional correctness of the hybrid factorizations on local and remote
//! accelerators, 1–3 devices, against the CPU references.

use dacc_linalg::hybrid::{dgeqrf_hybrid, dpotrf_hybrid, HybridConfig};
use dacc_linalg::lapack::{cholesky_residual, qr_residuals};
use dacc_linalg::matrix::{HostMatrix, Matrix};
use dacc_runtime::prelude::*;
use dacc_sim::prelude::*;
use dacc_vgpu::kernel::KernelRegistry;
use dacc_vgpu::params::{ExecMode, GpuParams};

fn registry() -> KernelRegistry {
    let reg = KernelRegistry::new();
    dacc_linalg::gpu::register_linalg_kernels(&reg);
    dacc_linalg::gpu::register_staging_kernels(&reg);
    reg
}

fn cfg_small() -> HybridConfig {
    HybridConfig {
        nb: 16,
        ..HybridConfig::default()
    }
}

/// Run a closure against `g` devices, local or remote, functional mode.
fn run_hybrid<F, T>(g: usize, remote: bool, f: F) -> T
where
    F: FnOnce(SimHandle, Vec<AcDevice>) -> std::pin::Pin<Box<dyn std::future::Future<Output = T>>>
        + 'static,
    T: 'static,
{
    let sim = Sim::new();
    let spec = ClusterSpec {
        compute_nodes: 1,
        accelerators: g,
        local_gpus: !remote,
        mode: ExecMode::Functional,
        gpu: GpuParams::tesla_c1060(),
        ..ClusterSpec::default()
    };
    let mut sim = sim;
    let mut cluster = build_cluster(&sim, spec, registry());
    let ep = cluster.cn_endpoints.remove(0);
    let h = sim.handle();
    let devices: Vec<AcDevice> = if remote {
        (0..g)
            .map(|i| {
                AcDevice::Remote(RemoteAccelerator::new(
                    ep.clone(),
                    cluster.daemon_rank(i),
                    FrontendConfig::default(),
                ))
            })
            .collect()
    } else {
        cluster
            .local_gpus
            .iter()
            .cloned()
            .map(AcProcess::local_device)
            .collect()
    };
    let out = sim.spawn("hybrid", async move {
        let result = f(h, devices.clone()).await;
        for d in &devices {
            if let AcDevice::Remote(r) = d {
                let _ = r.shutdown().await;
            }
        }
        result
    });
    sim.run();
    out.try_take().expect("hybrid run did not finish")
}

fn check_cholesky(n: usize, g: usize, remote: bool) {
    let a = Matrix::random_spd(n, &mut SimRng::new(n as u64 * 7 + g as u64));
    let a0 = a.clone();
    let (factored, gflops) = run_hybrid(g, remote, move |h, devices| {
        Box::pin(async move {
            let mut host = HostMatrix::Real(a);
            let report = dpotrf_hybrid(&h, &devices, &mut host, &cfg_small())
                .await
                .unwrap();
            (
                match host {
                    HostMatrix::Real(m) => m,
                    _ => unreachable!(),
                },
                report.gflops,
            )
        })
    });
    let resid = cholesky_residual(&a0, &factored);
    assert!(
        resid < 1e-10,
        "cholesky residual {resid} for n={n}, g={g}, remote={remote}"
    );
    assert!(gflops > 0.0);
}

fn check_qr(m: usize, n: usize, g: usize, remote: bool) {
    let a = Matrix::random(m, n, &mut SimRng::new(m as u64 * 31 + g as u64));
    let a0 = a.clone();
    let (factored, tau) = run_hybrid(g, remote, move |h, devices| {
        Box::pin(async move {
            let mut host = HostMatrix::Real(a);
            let report = dgeqrf_hybrid(&h, &devices, &mut host, &cfg_small())
                .await
                .unwrap();
            (
                match host {
                    HostMatrix::Real(m) => m,
                    _ => unreachable!(),
                },
                report.tau,
            )
        })
    });
    let (resid, orth) = qr_residuals(&a0, &factored, &tau);
    assert!(
        resid < 1e-8 && orth < 1e-10,
        "qr residuals ({resid}, {orth}) for m={m}, n={n}, g={g}, remote={remote}"
    );
}

#[test]
fn cholesky_single_local_gpu() {
    check_cholesky(48, 1, false);
}

#[test]
fn cholesky_single_remote_gpu() {
    check_cholesky(48, 1, true);
}

#[test]
fn cholesky_multi_remote_gpus() {
    check_cholesky(64, 2, true);
    check_cholesky(80, 3, true);
}

#[test]
fn cholesky_odd_sizes() {
    // Non-multiples of nb exercise the partial final block.
    check_cholesky(33, 2, true);
    check_cholesky(17, 3, true);
    check_cholesky(16, 1, true); // exactly one block
    check_cholesky(5, 2, true); // smaller than one block
}

#[test]
fn qr_single_local_gpu() {
    check_qr(48, 48, 1, false);
}

#[test]
fn qr_single_remote_gpu() {
    check_qr(48, 48, 1, true);
}

#[test]
fn qr_multi_remote_gpus() {
    check_qr(64, 64, 2, true);
    check_qr(80, 80, 3, true);
}

#[test]
fn qr_tall_and_odd_sizes() {
    check_qr(50, 33, 2, true);
    check_qr(40, 17, 3, true);
    check_qr(20, 16, 1, true);
}

#[test]
fn local_and_remote_agree_bitwise() {
    // The port is call-for-call identical; with the same input the local
    // and remote factorizations must produce the same factor exactly.
    let n = 48;
    let a = Matrix::random_spd(n, &mut SimRng::new(99));
    let run = |remote: bool| {
        let a = a.clone();
        run_hybrid(1, remote, move |h, devices| {
            Box::pin(async move {
                let mut host = HostMatrix::Real(a);
                dpotrf_hybrid(&h, &devices, &mut host, &cfg_small())
                    .await
                    .unwrap();
                match host {
                    HostMatrix::Real(m) => m,
                    _ => unreachable!(),
                }
            })
        })
    };
    let local = run(false);
    let remote = run(true);
    assert_eq!(
        local.lower_triangle(),
        remote.lower_triangle(),
        "local vs remote factors differ"
    );
}

#[test]
fn timing_only_mode_runs_paper_shapes() {
    // Shape-only matrices at a bigger size: no real data, same control flow.
    let (elapsed_1, elapsed_3) = {
        let run = |g: usize| {
            let sim = Sim::new();
            let spec = ClusterSpec {
                compute_nodes: 1,
                accelerators: g,
                mode: ExecMode::TimingOnly,
                gpu: GpuParams::tesla_c1060(),
                ..ClusterSpec::default()
            };
            let mut sim = sim;
            let mut cluster = build_cluster(&sim, spec, registry());
            let ep = cluster.cn_endpoints.remove(0);
            let h = sim.handle();
            let devices: Vec<AcDevice> = (0..g)
                .map(|i| {
                    AcDevice::Remote(RemoteAccelerator::new(
                        ep.clone(),
                        cluster.daemon_rank(i),
                        FrontendConfig::default(),
                    ))
                })
                .collect();
            let out = sim.spawn("t", async move {
                let mut host = HostMatrix::Shape {
                    rows: 2048,
                    cols: 2048,
                };
                let report = dgeqrf_hybrid(&h, &devices, &mut host, &HybridConfig::default())
                    .await
                    .unwrap();
                report.elapsed
            });
            sim.run();
            out.try_take().expect("timing run did not finish")
        };
        (run(1), run(3))
    };
    assert!(
        elapsed_3 < elapsed_1,
        "3 GPUs ({elapsed_3}) should beat 1 GPU ({elapsed_1})"
    );
}

#[test]
fn peer_direct_broadcast_matches_via_host() {
    // §III-C: direct accelerator-to-accelerator panel broadcast gives the
    // same factors as routing through the compute node.
    use dacc_linalg::hybrid::PanelBroadcast;
    let n = 64;
    let a = Matrix::random_spd(n, &mut SimRng::new(123));
    let run = |broadcast: PanelBroadcast| {
        let a = a.clone();
        run_hybrid(3, true, move |h, devices| {
            Box::pin(async move {
                let mut host = HostMatrix::Real(a);
                let cfg = HybridConfig {
                    broadcast,
                    ..cfg_small()
                };
                dpotrf_hybrid(&h, &devices, &mut host, &cfg).await.unwrap();
                match host {
                    HostMatrix::Real(m) => m,
                    _ => unreachable!(),
                }
            })
        })
    };
    let via_host = run(PanelBroadcast::ViaHost);
    let peer = run(PanelBroadcast::PeerDirect);
    assert_eq!(via_host.lower_triangle(), peer.lower_triangle());
}

#[test]
fn peer_direct_qr_correct() {
    use dacc_linalg::hybrid::PanelBroadcast;
    let (m, n, g) = (64usize, 64usize, 3usize);
    let a = Matrix::random(m, n, &mut SimRng::new(77));
    let a0 = a.clone();
    let (factored, tau) = run_hybrid(g, true, move |h, devices| {
        Box::pin(async move {
            let mut host = HostMatrix::Real(a);
            let cfg = HybridConfig {
                broadcast: PanelBroadcast::PeerDirect,
                ..cfg_small()
            };
            let report = dgeqrf_hybrid(&h, &devices, &mut host, &cfg).await.unwrap();
            (
                match host {
                    HostMatrix::Real(m) => m,
                    _ => unreachable!(),
                },
                report.tau,
            )
        })
    });
    let (resid, orth) = qr_residuals(&a0, &factored, &tau);
    assert!(resid < 1e-8 && orth < 1e-10, "({resid}, {orth})");
}

#[test]
fn mixed_local_and_remote_pool() {
    // §III-A's "mix of both worlds": a compute node uses its node-local GPU
    // *plus* network-attached accelerators from the pool, in one
    // factorization.
    let n = 64;
    let a = Matrix::random_spd(n, &mut SimRng::new(55));
    let a0 = a.clone();
    let mut sim = Sim::new();
    let spec = ClusterSpec {
        compute_nodes: 1,
        accelerators: 2,
        local_gpus: true,
        mode: ExecMode::Functional,
        gpu: GpuParams::tesla_c1060(),
        ..ClusterSpec::default()
    };
    let mut cluster = build_cluster(&sim, spec, registry());
    let ep = cluster.cn_endpoints.remove(0);
    let h = sim.handle();
    let mut devices = vec![AcProcess::local_device(cluster.local_gpus[0].clone())];
    for i in 0..2 {
        devices.push(AcDevice::Remote(RemoteAccelerator::new(
            ep.clone(),
            cluster.daemon_rank(i),
            FrontendConfig::default(),
        )));
    }
    let out = sim.spawn("mixed", async move {
        let mut host = HostMatrix::Real(a);
        dpotrf_hybrid(&h, &devices, &mut host, &cfg_small())
            .await
            .unwrap();
        for d in &devices {
            if let AcDevice::Remote(r) = d {
                let _ = r.shutdown().await;
            }
        }
        match host {
            HostMatrix::Real(m) => m,
            _ => unreachable!(),
        }
    });
    sim.run();
    let factored = out.try_take().expect("mixed run did not finish");
    let resid = cholesky_residual(&a0, &factored);
    assert!(resid < 1e-10, "mixed-pool residual {resid}");
}

#[test]
fn lookahead_qr_matches_non_lookahead() {
    // Lookahead reorders the schedule, not the arithmetic: same factors.
    for g in [1usize, 2, 3] {
        let (m, n) = (64usize, 64usize);
        let a = Matrix::random(m, n, &mut SimRng::new(500 + g as u64));
        let run = |lookahead: bool| {
            let a = a.clone();
            run_hybrid(g, true, move |h, devices| {
                Box::pin(async move {
                    let mut host = HostMatrix::Real(a);
                    let cfg = HybridConfig {
                        lookahead,
                        ..cfg_small()
                    };
                    let report = dgeqrf_hybrid(&h, &devices, &mut host, &cfg).await.unwrap();
                    (
                        match host {
                            HostMatrix::Real(m) => m,
                            _ => unreachable!(),
                        },
                        report.tau,
                        report.elapsed,
                    )
                })
            })
        };
        let (f0, tau0, t0) = run(false);
        let (f1, tau1, t1) = run(true);
        assert_eq!(f0, f1, "lookahead changed the factor (g={g})");
        assert_eq!(tau0, tau1);
        // At this tiny size the extra launches can outweigh the hidden
        // panel time; just guard against pathological slowdowns (the
        // dedicated timing test below checks the real saving at scale).
        assert!(
            t1.as_secs_f64() < t0.as_secs_f64() * 1.5,
            "lookahead pathologically slow: {t1} vs {t0} (g={g})"
        );
        // The result must also be correct.
        let (resid, orth) = qr_residuals(&a, &f1, &tau1);
        assert!(resid < 1e-8 && orth < 1e-10);
    }
}

#[test]
fn lookahead_hides_cpu_panel_time() {
    // Timing-only at a size where the CPU panel is a visible fraction:
    // lookahead must shave a meaningful part of it.
    let run = |lookahead: bool| {
        let mut sim = Sim::new();
        let spec = ClusterSpec {
            compute_nodes: 1,
            accelerators: 1,
            mode: ExecMode::TimingOnly,
            gpu: GpuParams::tesla_c1060(),
            ..ClusterSpec::default()
        };
        let mut cluster = build_cluster(&sim, spec, registry());
        let ep = cluster.cn_endpoints.remove(0);
        let h = sim.handle();
        let daemon = cluster.daemon_rank(0);
        let out = sim.spawn("t", async move {
            let devices = vec![AcDevice::Remote(RemoteAccelerator::new(
                ep,
                daemon,
                FrontendConfig::default(),
            ))];
            let mut host = HostMatrix::Shape {
                rows: 4096,
                cols: 4096,
            };
            let cfg = HybridConfig {
                lookahead,
                ..HybridConfig::default()
            };
            dgeqrf_hybrid(&h, &devices, &mut host, &cfg)
                .await
                .unwrap()
                .elapsed
        });
        sim.run();
        out.try_take().expect("run did not finish")
    };
    let base = run(false);
    let la = run(true);
    let saving = 1.0 - la.as_secs_f64() / base.as_secs_f64();
    assert!(
        saving > 0.05,
        "lookahead saved only {:.1}% ({base} -> {la})",
        saving * 100.0
    );
}
