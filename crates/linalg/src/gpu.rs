//! GPU kernels for dense linear algebra, with C1060-calibrated cost models.
//!
//! Functional bodies run the real arithmetic (via [`crate::blas`]) on device
//! memory; cost models charge `flops / effective_rate` where the effective
//! rate follows a saturating efficiency curve in each dimension — small
//! trailing matrices run far below peak, which is what bends the GFlop/s
//! curves of Figures 9 and 10 at small N.

use dacc_sim::prelude::*;
use dacc_vgpu::kernel::{KernelArg, KernelError, KernelRegistry, LaunchConfig};
use dacc_vgpu::memory::{DeviceMem, DevicePtr};
use dacc_vgpu::params::GpuParams;

use crate::blas::{dgemm, dtrsm, Diag, Side, Trans, UpLo};
use crate::lapack::dlarfb_left_trans;

/// Saturating efficiency factor: `x / (x + x0)`.
fn eff(x: usize, x0: f64) -> f64 {
    let x = x as f64;
    x / (x + x0)
}

/// Effective DGEMM rate for an `m × n × k` product on this device.
///
/// Calibration: with `k = 128` (the hybrid block size) and large `m, n`,
/// a C1060 sustains ≈ 60–65 GFlop/s fp64 DGEMM out of its 78 GFlop/s peak.
pub fn dgemm_rate(m: usize, n: usize, k: usize, p: &GpuParams) -> f64 {
    p.fp64_peak_flops * eff(m, 192.0) * eff(n, 24.0) * eff(k, 16.0)
}

/// Modelled execution time of an `m × n × k` DGEMM.
pub fn dgemm_time(m: usize, n: usize, k: usize, p: &GpuParams) -> SimDuration {
    if m == 0 || n == 0 || k == 0 {
        return SimDuration::ZERO;
    }
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    SimDuration::from_secs_f64(flops / dgemm_rate(m, n, k, p))
}

fn read_mat(
    mem: &DeviceMem,
    ptr: DevicePtr,
    ld: usize,
    m: usize,
    n: usize,
) -> Result<Vec<f64>, KernelError> {
    let mut out = Vec::with_capacity(m * n);
    for j in 0..n {
        out.extend(mem.read_f64(ptr.offset((j * ld * 8) as u64), m)?);
    }
    Ok(out)
}

fn write_mat(
    mem: &mut DeviceMem,
    ptr: DevicePtr,
    ld: usize,
    m: usize,
    n: usize,
    data: &[f64],
) -> Result<(), KernelError> {
    for j in 0..n {
        mem.write_f64(ptr.offset((j * ld * 8) as u64), &data[j * m..(j + 1) * m])?;
    }
    Ok(())
}

/// Register the linear-algebra kernels on `reg`:
///
/// * `la.dgemm(ta, tb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc)`
/// * `la.dtrsm_rlt(m, n, A, lda, X, ldx)` — `X ← X · A⁻ᵀ`, `A` lower
///   triangular (the Cholesky panel solve)
/// * `la.dlarfb(m, n, k, V, ldv, T, C, ldc)` — apply the blocked reflector
///   `(I − V T Vᵀ)ᵀ` from the left (the QR trailing update; internally three
///   DGEMMs, charged as such)
pub fn register_linalg_kernels(reg: &KernelRegistry) {
    reg.register(
        "la.dgemm",
        |_cfg, args, p| {
            let m = args[2].usize().unwrap_or(0);
            let n = args[3].usize().unwrap_or(0);
            let k = args[4].usize().unwrap_or(0);
            dgemm_time(m, n, k, p)
        },
        |mem, _cfg, args| {
            let ta = if args[0].u64()? != 0 {
                Trans::Yes
            } else {
                Trans::No
            };
            let tb = if args[1].u64()? != 0 {
                Trans::Yes
            } else {
                Trans::No
            };
            let (m, n, k) = (args[2].usize()?, args[3].usize()?, args[4].usize()?);
            let alpha = args[5].f64()?;
            let (pa, lda) = (args[6].ptr()?, args[7].usize()?);
            let (pb, ldb) = (args[8].ptr()?, args[9].usize()?);
            let beta = args[10].f64()?;
            let (pc, ldc) = (args[11].ptr()?, args[12].usize()?);
            if m == 0 || n == 0 {
                return Ok(());
            }
            let (am, an) = match ta {
                Trans::No => (m, k),
                Trans::Yes => (k, m),
            };
            let (bm, bn) = match tb {
                Trans::No => (k, n),
                Trans::Yes => (n, k),
            };
            let a = read_mat(mem, pa, lda, am, an)?;
            let b = read_mat(mem, pb, ldb, bm, bn)?;
            let mut c = read_mat(mem, pc, ldc, m, n)?;
            dgemm(ta, tb, m, n, k, alpha, &a, am, &b, bm, beta, &mut c, m);
            write_mat(mem, pc, ldc, m, n, &c)?;
            Ok(())
        },
    );

    reg.register(
        "la.dtrsm_rlt",
        |_cfg, args, p| {
            let m = args[0].usize().unwrap_or(0);
            let n = args[1].usize().unwrap_or(0);
            // m·n² flops; triangular solves run below DGEMM efficiency.
            if m == 0 || n == 0 {
                return SimDuration::ZERO;
            }
            let flops = m as f64 * (n * n) as f64;
            SimDuration::from_secs_f64(flops / (0.6 * dgemm_rate(m, n, n, p)))
        },
        |mem, _cfg, args| {
            let (m, n) = (args[0].usize()?, args[1].usize()?);
            let (pa, lda) = (args[2].ptr()?, args[3].usize()?);
            let (px, ldx) = (args[4].ptr()?, args[5].usize()?);
            if m == 0 || n == 0 {
                return Ok(());
            }
            let a = read_mat(mem, pa, lda, n, n)?;
            let mut x = read_mat(mem, px, ldx, m, n)?;
            dtrsm(
                Side::Right,
                UpLo::Lower,
                Trans::Yes,
                Diag::NonUnit,
                m,
                n,
                1.0,
                &a,
                n,
                &mut x,
                m,
            );
            write_mat(mem, px, ldx, m, n, &x)?;
            Ok(())
        },
    );

    reg.register(
        "la.dlarfb",
        |_cfg, args, p| {
            let m = args[0].usize().unwrap_or(0);
            let n = args[1].usize().unwrap_or(0);
            let k = args[2].usize().unwrap_or(0);
            if m == 0 || n == 0 || k == 0 {
                return SimDuration::ZERO;
            }
            // W = VᵀC, W = TᵀW, C -= V W: 4mnk + 2k²n flops. MAGMA's
            // fused dlarfb sustains DGEMM-like rates, so charge the whole
            // thing at the rate of the dominant (m × n × k) product.
            let flops = 4.0 * (m * n) as f64 * k as f64 + 2.0 * (k * k * n) as f64;
            SimDuration::from_secs_f64(flops / dgemm_rate(m, n, k, p))
        },
        |mem, _cfg, args| {
            let (m, n, k) = (args[0].usize()?, args[1].usize()?, args[2].usize()?);
            let (pv, ldv) = (args[3].ptr()?, args[4].usize()?);
            let pt = args[5].ptr()?;
            let (pc, ldc) = (args[6].ptr()?, args[7].usize()?);
            if m == 0 || n == 0 || k == 0 {
                return Ok(());
            }
            let v = read_mat(mem, pv, ldv, m, k)?;
            let t = read_mat(mem, pt, k, k, k)?;
            let mut c = read_mat(mem, pc, ldc, m, n)?;
            dlarfb_left_trans(m, n, k, &v, m, &t, &mut c, m);
            write_mat(mem, pc, ldc, m, n, &c)?;
            Ok(())
        },
    );
}

/// Register the pack/unpack staging kernels (strided ↔ dense on device).
///
/// One-dimensional `acMemCpy` cannot move an lda-strided sub-matrix in one
/// transfer, so — as MAGMA's multi-GPU ports do — strided panels are packed
/// into a contiguous scratch buffer on the device before a D2H transfer,
/// and unpacked after an H2D transfer. Cost: a device-memory copy at GDDR
/// bandwidth.
///
/// * `la.pack(src, ld, rows, cols, dst)` — gather into dense `dst`.
/// * `la.unpack(src, dst, ld, rows, cols)` — scatter dense `src`.
pub fn register_staging_kernels(reg: &KernelRegistry) {
    let copy_cost = |rows: u64, cols: u64| {
        let bytes = rows * cols * 8;
        // Read + write at ~35 GiB/s effective device-memory bandwidth.
        Bandwidth::from_gib_per_sec(35.0).transfer_time(2 * bytes)
    };
    reg.register(
        "la.pack",
        move |_cfg, args, _p| copy_cost(args[2].u64().unwrap_or(0), args[3].u64().unwrap_or(0)),
        |mem, _cfg, args| {
            let (src, ld) = (args[0].ptr()?, args[1].usize()?);
            let (rows, cols) = (args[2].usize()?, args[3].usize()?);
            let dst = args[4].ptr()?;
            let data = read_mat(mem, src, ld, rows, cols)?;
            mem.write_f64(dst, &data)?;
            Ok(())
        },
    );
    reg.register(
        "la.unpack",
        move |_cfg, args, _p| copy_cost(args[3].u64().unwrap_or(0), args[4].u64().unwrap_or(0)),
        |mem, _cfg, args| {
            let src = args[0].ptr()?;
            let (dst, ld) = (args[1].ptr()?, args[2].usize()?);
            let (rows, cols) = (args[3].usize()?, args[4].usize()?);
            let data = mem.read_f64(src, rows * cols)?;
            write_mat(mem, dst, ld, rows, cols, &data)?;
            Ok(())
        },
    );
}

/// Convenience argument builders for the registered kernels.
pub mod args {
    use super::*;

    /// Arguments for `la.dgemm`.
    #[allow(clippy::too_many_arguments)]
    pub fn dgemm_args(
        ta: Trans,
        tb: Trans,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        a: DevicePtr,
        lda: usize,
        b: DevicePtr,
        ldb: usize,
        beta: f64,
        c: DevicePtr,
        ldc: usize,
    ) -> Vec<KernelArg> {
        vec![
            KernelArg::U64(u64::from(ta == Trans::Yes)),
            KernelArg::U64(u64::from(tb == Trans::Yes)),
            KernelArg::U64(m as u64),
            KernelArg::U64(n as u64),
            KernelArg::U64(k as u64),
            KernelArg::F64(alpha),
            KernelArg::Ptr(a),
            KernelArg::U64(lda as u64),
            KernelArg::Ptr(b),
            KernelArg::U64(ldb as u64),
            KernelArg::F64(beta),
            KernelArg::Ptr(c),
            KernelArg::U64(ldc as u64),
        ]
    }

    /// Arguments for `la.dtrsm_rlt`.
    pub fn dtrsm_rlt_args(
        m: usize,
        n: usize,
        a: DevicePtr,
        lda: usize,
        x: DevicePtr,
        ldx: usize,
    ) -> Vec<KernelArg> {
        vec![
            KernelArg::U64(m as u64),
            KernelArg::U64(n as u64),
            KernelArg::Ptr(a),
            KernelArg::U64(lda as u64),
            KernelArg::Ptr(x),
            KernelArg::U64(ldx as u64),
        ]
    }

    /// Arguments for `la.dlarfb`.
    #[allow(clippy::too_many_arguments)]
    pub fn dlarfb_args(
        m: usize,
        n: usize,
        k: usize,
        v: DevicePtr,
        ldv: usize,
        t: DevicePtr,
        c: DevicePtr,
        ldc: usize,
    ) -> Vec<KernelArg> {
        vec![
            KernelArg::U64(m as u64),
            KernelArg::U64(n as u64),
            KernelArg::U64(k as u64),
            KernelArg::Ptr(v),
            KernelArg::U64(ldv as u64),
            KernelArg::Ptr(t),
            KernelArg::Ptr(c),
            KernelArg::U64(ldc as u64),
        ]
    }

    /// Standard launch configuration for these kernels (grid sized by
    /// output tiles; the cost model is what matters).
    pub fn launch_cfg(m: usize, n: usize) -> LaunchConfig {
        LaunchConfig {
            grid: (
                m.div_ceil(64).max(1) as u32,
                n.div_ceil(16).max(1) as u32,
                1,
            ),
            block: (64, 16, 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use dacc_sim::rng::SimRng;
    use dacc_vgpu::device::{HostMemKind, VirtualGpu};
    use dacc_vgpu::params::{ExecMode, GpuParams};

    fn upload(gpu: &VirtualGpu, m: &Matrix) -> DevicePtr {
        let ptr = gpu.mem().alloc((m.as_slice().len() * 8) as u64).unwrap();
        gpu.mem().write_f64(ptr, m.as_slice()).unwrap();
        ptr
    }

    fn download(gpu: &VirtualGpu, ptr: DevicePtr, rows: usize, cols: usize) -> Matrix {
        let v = gpu.mem().read_f64(ptr, rows * cols).unwrap();
        let mut m = Matrix::zeros(rows, cols);
        m.as_mut_slice().copy_from_slice(&v);
        m
    }

    fn test_gpu() -> (Sim, VirtualGpu) {
        let sim = Sim::new();
        let reg = KernelRegistry::new();
        register_linalg_kernels(&reg);
        let gpu = VirtualGpu::new(
            &sim.handle(),
            "gpu",
            GpuParams::tesla_c1060(),
            ExecMode::Functional,
            reg,
        );
        (sim, gpu)
    }

    #[test]
    fn device_dgemm_matches_cpu() {
        let (mut sim, gpu) = test_gpu();
        let mut rng = SimRng::new(1);
        let a = Matrix::random(6, 4, &mut rng);
        let b = Matrix::random(4, 5, &mut rng);
        let c = Matrix::random(6, 5, &mut rng);
        let pa = upload(&gpu, &a);
        let pb = upload(&gpu, &b);
        let pc = upload(&gpu, &c);
        let gpu2 = gpu.clone();
        sim.spawn("t", async move {
            gpu2.launch(
                "la.dgemm",
                args::launch_cfg(6, 5),
                &args::dgemm_args(
                    Trans::No,
                    Trans::No,
                    6,
                    5,
                    4,
                    1.0,
                    pa,
                    6,
                    pb,
                    4,
                    -1.0,
                    pc,
                    6,
                ),
            )
            .await
            .unwrap();
        });
        sim.run();
        let got = download(&gpu, pc, 6, 5);
        let expect = Matrix::from_fn(6, 5, |i, j| a.mul(&b).get(i, j) - c.get(i, j));
        assert!(got.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn device_dgemm_strided_submatrix() {
        // C is a 3x2 block inside a 5x4 device matrix (ldc = 5).
        let (mut sim, gpu) = test_gpu();
        let mut rng = SimRng::new(2);
        let big = Matrix::random(5, 4, &mut rng);
        let a = Matrix::random(3, 2, &mut rng);
        let b = Matrix::random(2, 2, &mut rng);
        let pbig = upload(&gpu, &big);
        let pa = upload(&gpu, &a);
        let pb = upload(&gpu, &b);
        // Block starts at (1, 1): offset (1*5 + 1) elements.
        let pc = pbig.offset((5 + 1) * 8);
        let gpu2 = gpu.clone();
        sim.spawn("t", async move {
            gpu2.launch(
                "la.dgemm",
                args::launch_cfg(3, 2),
                &args::dgemm_args(Trans::No, Trans::No, 3, 2, 2, 1.0, pa, 3, pb, 2, 0.0, pc, 5),
            )
            .await
            .unwrap();
        });
        sim.run();
        let got = download(&gpu, pbig, 5, 4);
        let ab = a.mul(&b);
        for i in 0..3 {
            for j in 0..2 {
                assert!((got.get(1 + i, 1 + j) - ab.get(i, j)).abs() < 1e-12);
            }
        }
        // Border untouched.
        assert_eq!(got.get(0, 0), big.get(0, 0));
        assert_eq!(got.get(4, 3), big.get(4, 3));
    }

    #[test]
    fn device_dtrsm_solves_cholesky_panel() {
        let (mut sim, gpu) = test_gpu();
        let mut rng = SimRng::new(3);
        let l = Matrix::from_fn(3, 3, |i, j| {
            if i == j {
                2.0
            } else if i > j {
                0.4
            } else {
                0.0
            }
        });
        let x_true = Matrix::random(5, 3, &mut rng);
        let b = x_true.mul(&l.transpose());
        let pl = upload(&gpu, &l);
        let px = upload(&gpu, &b);
        let gpu2 = gpu.clone();
        sim.spawn("t", async move {
            gpu2.launch(
                "la.dtrsm_rlt",
                args::launch_cfg(5, 3),
                &args::dtrsm_rlt_args(5, 3, pl, 3, px, 5),
            )
            .await
            .unwrap();
        });
        sim.run();
        let got = download(&gpu, px, 5, 3);
        assert!(got.max_abs_diff(&x_true) < 1e-12);
    }

    #[test]
    fn device_dlarfb_matches_cpu() {
        let (mut sim, gpu) = test_gpu();
        let mut rng = SimRng::new(4);
        let (m, k, n) = (8, 3, 4);
        let a = Matrix::random(m, k, &mut rng);
        let mut f = a.clone();
        let tau = crate::lapack::dgeqr2(m, k, f.as_mut_slice(), m);
        let t = crate::lapack::dlarft(m, k, f.as_slice(), m, &tau);
        let c = Matrix::random(m, n, &mut rng);
        let mut c_cpu = c.clone();
        dlarfb_left_trans(m, n, k, f.as_slice(), m, &t, c_cpu.as_mut_slice(), m);

        let pv = upload(&gpu, &f);
        let pt = {
            let ptr = gpu.mem().alloc((k * k * 8) as u64).unwrap();
            gpu.mem().write_f64(ptr, &t).unwrap();
            ptr
        };
        let pc = upload(&gpu, &c);
        let gpu2 = gpu.clone();
        sim.spawn("t", async move {
            gpu2.launch(
                "la.dlarfb",
                args::launch_cfg(m, n),
                &args::dlarfb_args(m, n, k, pv, m, pt, pc, m),
            )
            .await
            .unwrap();
        });
        sim.run();
        let got = download(&gpu, pc, m, n);
        assert!(got.max_abs_diff(&c_cpu) < 1e-11);
    }

    #[test]
    fn gemm_rate_calibration() {
        let p = GpuParams::tesla_c1060();
        // Large m,n with the hybrid's k=128: 60-65 GFlop/s.
        let r = dgemm_rate(8000, 4000, 128, &p) / 1e9;
        assert!((58.0..=70.0).contains(&r), "k=128 rate {r}");
        // Tiny matrices: far below peak.
        let small = dgemm_rate(128, 128, 128, &p) / 1e9;
        assert!(small < 30.0, "small-matrix rate {small}");
        // Zero-size: zero time.
        assert_eq!(dgemm_time(0, 10, 10, &p), SimDuration::ZERO);
    }

    #[test]
    fn local_copy_then_kernel_pipeline() {
        // Upload via the device copy path (not direct mem access) and run.
        let (mut sim, gpu) = test_gpu();
        let a = Matrix::from_fn(4, 4, |i, j| (i == j) as u64 as f64 * 2.0);
        let gpu2 = gpu.clone();
        let done = sim.spawn("t", async move {
            let pa = gpu2.mem().alloc(4 * 4 * 8).unwrap();
            let pc = gpu2.mem().alloc(4 * 4 * 8).unwrap();
            gpu2.memcpy_h2d(
                &crate::matrix::f64_to_payload(a.as_slice()),
                pa,
                HostMemKind::Pinned,
            )
            .await
            .unwrap();
            gpu2.memcpy_h2d(
                &crate::matrix::f64_to_payload(a.as_slice()),
                pc,
                HostMemKind::Pinned,
            )
            .await
            .unwrap();
            // C := A*A - so C should be 4I since A = 2I... C = A*A + 0*C.
            gpu2.launch(
                "la.dgemm",
                args::launch_cfg(4, 4),
                &args::dgemm_args(Trans::No, Trans::No, 4, 4, 4, 1.0, pa, 4, pa, 4, 0.0, pc, 4),
            )
            .await
            .unwrap();
            gpu2.memcpy_d2h(pc, 4 * 4 * 8, HostMemKind::Pinned)
                .await
                .unwrap()
        });
        sim.run();
        let payload = done.try_take().unwrap();
        let vals = crate::matrix::payload_to_f64(&payload);
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 4.0 } else { 0.0 };
                assert_eq!(vals[j * 4 + i], expect);
            }
        }
    }
}
