//! MAGMA-style hybrid CPU+GPU factorizations over the middleware API.
//!
//! The matrix is distributed over one or more accelerators in a 1-D
//! block-cyclic column layout. Each iteration factors a panel on the
//! compute node's CPU, sends it back, and updates the trailing matrix on
//! the GPUs — the structure of `magma_dpotrf_mgpu` / `magma_dgeqrf2_mgpu`
//! (MAGMA 1.1), ported to the dynamic architecture by replacing every
//! `cudaMemcpy`/launch with its `acMemCpy`/`acKernel*` counterpart
//! ([`AcDevice`] makes the two spellings identical — §V.B of the paper).
//!
//! Communication structure per iteration:
//!
//! * **Cholesky** — diagonal block D2H → CPU `dpotf2` → H2D; `dtrsm` on the
//!   owner GPU; panel broadcast to the *other* GPUs only. With one GPU no
//!   panel ever crosses the network, which is why Cholesky is insensitive
//!   to remote attachment (Fig. 10).
//! * **QR** — the whole panel comes to the CPU (`dgeqr2` + `dlarft`) and
//!   goes back, every iteration, plus a broadcast of `V` and `T`. That
//!   round-trip is why QR is the bandwidth-sensitive one (Fig. 9).

use dacc_fabric::payload::Payload;
use dacc_runtime::api::{device_to_device, AcDevice, AcError, RemoteAccelerator};
use dacc_runtime::stream::{AcStream, StreamConfig};
use dacc_sim::prelude::*;
use dacc_vgpu::kernel::{KernelArg, LaunchConfig};
use dacc_vgpu::memory::DevicePtr;

/// Boxed per-device update future (heterogeneous: the lookahead owner runs
/// a different body than the other devices).
type UpdateFuture<'a> =
    std::pin::Pin<Box<dyn std::future::Future<Output = Result<(), AcError>> + 'a>>;

use crate::blas::Trans;
use crate::gpu::args::{dgemm_args, dlarfb_args, dtrsm_rlt_args, launch_cfg};
use crate::lapack::{dgeqr2, dlarft, dpotf2};
use crate::matrix::{f64_to_payload, payload_to_f64, HostMatrix};

/// How factored panels reach the non-owner devices each iteration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PanelBroadcast {
    /// D2H to the compute node, then one H2D per device — every byte
    /// crosses the compute node's NIC (the MAGMA-port structure of §V.B).
    ViaHost,
    /// Direct accelerator-to-accelerator streaming between the daemons
    /// (§III-C: "accelerators can efficiently exchange data without
    /// involving their associated compute nodes"). Falls back to the host
    /// path for node-local devices, which have no daemon.
    PeerDirect,
}

/// Tuning for the hybrid drivers.
#[derive(Clone, Copy, Debug)]
pub struct HybridConfig {
    /// Panel width (MAGMA uses 128 for these routines on a C1060).
    pub nb: usize,
    /// CPU panel-factorization rate (GFlop/s, one socket of the testbed).
    pub cpu_panel_gflops: f64,
    /// Panel broadcast strategy for multi-GPU runs.
    pub broadcast: PanelBroadcast,
    /// Lookahead: overlap the *next* panel's fetch and CPU factorization
    /// with the current trailing update (QR only). The paper-era MAGMA port
    /// measured in Fig. 9 behaves like `false`; `true` shows the classic
    /// optimization on top (see the `ablation_lookahead` study).
    pub lookahead: bool,
    /// Issue device work through asynchronous command streams
    /// ([`AcStream`]): launches, H2D copies, and frees are enqueued
    /// fire-and-forget and batched on the wire, eliminating most of the
    /// per-request round-trip stalls. The paper-era port measured in
    /// Fig. 9/10 behaves like `false`; `true` shows the optimization (see
    /// the `ablation_async` study).
    pub streams: bool,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            nb: 128,
            cpu_panel_gflops: 6.5,
            broadcast: PanelBroadcast::ViaHost,
            lookahead: false,
            streams: false,
        }
    }
}

fn as_remote(dev: &AcDevice) -> Option<&RemoteAccelerator> {
    match dev {
        AcDevice::Remote(r) => Some(r),
        // Resilient sessions hand out virtual pointers that daemon-to-daemon
        // transfers cannot interpret; peer broadcasts fall back to the host
        // path (peer traffic is outside the failover plane).
        AcDevice::Local { .. } | AcDevice::Resilient(_) => None,
    }
}

/// Broadcast `bytes` of packed panel sitting in `owner`'s scratch buffer to
/// each receiver's workspace: directly daemon-to-daemon where possible,
/// else through the host.
async fn broadcast_panel(
    dist: &Dist,
    owner: usize,
    bytes: u64,
    receivers: &[usize],
    mode: PanelBroadcast,
    host_copy: Option<&Payload>,
) -> Result<(), AcError> {
    for &d in receivers {
        let src_slot = &dist.slots[owner];
        let dst_slot = &dist.slots[d];
        let direct = mode == PanelBroadcast::PeerDirect;
        match (direct, as_remote(&src_slot.dev), as_remote(&dst_slot.dev)) {
            (true, Some(src), Some(dst)) => {
                // Peer transfers are plain requests; flushing both streams
                // orders them after each side's enqueued work (the packed
                // panel on the source, prior workspace reads on the
                // destination).
                src_slot.flush().await?;
                dst_slot.flush().await?;
                device_to_device(src, src_slot.scratch, dst, dst_slot.panel_ws, bytes).await?;
            }
            _ => {
                // Host path: reuse the host copy when the caller has one,
                // otherwise pull the packed panel down once.
                let payload = match host_copy {
                    Some(p) => p.clone(),
                    None => src_slot.d2h(src_slot.scratch, bytes).await?,
                };
                dst_slot.h2d(&payload, dst_slot.panel_ws).await?;
            }
        }
    }
    Ok(())
}

/// Outcome of a hybrid factorization.
#[derive(Clone, Debug)]
pub struct HybridReport {
    /// Virtual time spent inside the factorization (excluding the initial
    /// distribution and final collection, as MAGMA's timers do).
    pub elapsed: SimDuration,
    /// Nominal flop count of the factorization.
    pub flops: f64,
    /// `flops / elapsed`.
    pub gflops: f64,
    /// Householder scalars per panel (QR only, functional mode only).
    pub tau: Vec<f64>,
}

/// Nominal flop count of a lower Cholesky factorization.
pub fn cholesky_flops(n: usize) -> f64 {
    let n = n as f64;
    n * n * n / 3.0
}

/// Nominal flop count of a Householder QR factorization (`m ≥ n`).
pub fn qr_flops(m: usize, n: usize) -> f64 {
    let (m, n) = (m as f64, n as f64);
    2.0 * m * n * n - 2.0 * n * n * n / 3.0
}

/// Per-device state of the block-cyclic distribution.
struct Slot {
    dev: AcDevice,
    /// Command stream carrying this device's fire-and-forget work
    /// ([`HybridConfig::streams`]); `None` runs the paper-era synchronous
    /// calls.
    stream: Option<AcStream>,
    /// Base of the local block-column buffer (`m × local_cols`, lda = m).
    base: DevicePtr,
    /// Contiguous panel workspace (`m × nb` doubles).
    panel_ws: DevicePtr,
    /// `T` workspace (`nb × nb` doubles, QR only but always allocated).
    t_ws: DevicePtr,
    /// Contiguous scratch for pack/unpack staging (`m × nb` doubles).
    scratch: DevicePtr,
    /// Number of local block columns.
    local_blocks: usize,
}

impl Slot {
    /// Enqueue (streamed) or run (synchronous) a kernel launch.
    async fn launch(
        &self,
        name: &str,
        cfg: LaunchConfig,
        args: &[KernelArg],
    ) -> Result<(), AcError> {
        match &self.stream {
            Some(s) => s.launch(name, cfg, args).await,
            None => self.dev.launch(name, cfg, args).await,
        }
    }

    /// Enqueue or run a host→device copy.
    async fn h2d(&self, src: &Payload, dst: DevicePtr) -> Result<(), AcError> {
        match &self.stream {
            Some(s) => s.mem_cpy_h2d(src, dst).await,
            None => self.dev.mem_cpy_h2d(src, dst).await,
        }
    }

    /// Enqueue or run a free.
    async fn free(&self, ptr: DevicePtr) -> Result<(), AcError> {
        match &self.stream {
            Some(s) => s.mem_free(ptr).await,
            None => self.dev.mem_free(ptr).await,
        }
    }

    /// Device→host copy ordered after everything enqueued so far: a flush
    /// suffices (no ack drain) because a client's plain requests cannot
    /// overtake its flushed stream batches on the fabric.
    async fn d2h(&self, src: DevicePtr, len: u64) -> Result<Payload, AcError> {
        self.flush().await?;
        self.dev.mem_cpy_d2h(src, len).await
    }

    /// Submit pending streamed work without draining acks.
    async fn flush(&self) -> Result<(), AcError> {
        match &self.stream {
            Some(s) => s.flush().await,
            None => Ok(()),
        }
    }

    /// Drain this device's stream (no-op when synchronous).
    async fn sync(&self) -> Result<(), AcError> {
        match &self.stream {
            Some(s) => s.synchronize().await,
            None => Ok(()),
        }
    }
}

struct Dist {
    slots: Vec<Slot>,
    m: usize,
    n: usize,
    nb: usize,
    nblocks: usize,
}

impl Dist {
    fn g(&self) -> usize {
        self.slots.len()
    }

    fn owner(&self, j: usize) -> usize {
        j % self.g()
    }

    fn width(&self, j: usize) -> usize {
        self.nb.min(self.n - j * self.nb)
    }

    /// Device pointer to the top of global block column `j` on its owner.
    fn col_ptr(&self, j: usize) -> DevicePtr {
        let slot = &self.slots[self.owner(j)];
        slot.base
            .offset(((j / self.g()) * self.nb * self.m * 8) as u64)
    }

    /// Index of the first local block on device `d` whose global block
    /// index is strictly greater than `k`.
    fn first_trailing_local(&self, d: usize, k: usize) -> usize {
        if d > k {
            0
        } else {
            (k - d) / self.g() + 1
        }
    }

    /// First local block index on device `d` strictly after global block
    /// `k`, and the device pointer / column count of that trailing region.
    fn trailing(&self, d: usize, k: usize) -> Option<(DevicePtr, usize)> {
        let g = self.g();
        let l0 = self.first_trailing_local(d, k);
        let slot = &self.slots[d];
        if l0 >= slot.local_blocks {
            return None;
        }
        let ptr = slot.base.offset((l0 * self.nb * self.m * 8) as u64);
        // All full blocks except possibly the final global block.
        let mut cols = 0;
        for l in l0..slot.local_blocks {
            cols += self.width(l * g + d);
        }
        Some((ptr, cols))
    }
}

async fn stream_alloc(
    dev: &AcDevice,
    stream: &Option<AcStream>,
    len: u64,
) -> Result<DevicePtr, AcError> {
    match stream {
        Some(s) => s.mem_alloc(len).await,
        None => dev.mem_alloc(len).await,
    }
}

async fn setup(
    devices: &[AcDevice],
    host: &HostMatrix,
    nb: usize,
    streams: bool,
) -> Result<Dist, AcError> {
    let (m, n) = (host.rows(), host.cols());
    assert!(m >= n, "hybrid factorizations require m >= n");
    assert!(!devices.is_empty());
    let g = devices.len();
    let nblocks = n.div_ceil(nb);
    let mut slots = Vec::with_capacity(g);
    for (d, dev) in devices.iter().enumerate() {
        let stream = streams.then(|| dev.stream(StreamConfig::default()));
        let local_blocks = (nblocks + g - 1 - d) / g; // blocks j ≡ d (mod g)
        let local_cols: usize = (0..local_blocks)
            .map(|l| nb.min(n - (l * g + d) * nb))
            .sum();
        let base = stream_alloc(dev, &stream, (m * local_cols.max(1) * 8) as u64).await?;
        let panel_ws = stream_alloc(dev, &stream, (m * nb * 8) as u64).await?;
        let t_ws = stream_alloc(dev, &stream, (nb * nb * 8) as u64).await?;
        let scratch = stream_alloc(dev, &stream, (m * nb * 8) as u64).await?;
        slots.push(Slot {
            dev: dev.clone(),
            stream,
            base,
            panel_ws,
            t_ws,
            scratch,
            local_blocks,
        });
    }
    let dist = Dist {
        slots,
        m,
        n,
        nb,
        nblocks,
    };
    // Distribute: every block column is a contiguous m × width slab.
    for j in 0..nblocks {
        let w = dist.width(j);
        let payload = host.columns_payload(j * nb, w);
        dist.slots[dist.owner(j)]
            .h2d(&payload, dist.col_ptr(j))
            .await?;
    }
    // Drain the streams so the timed region excludes the distribution,
    // exactly as the synchronous path does.
    for slot in &dist.slots {
        slot.sync().await?;
    }
    Ok(dist)
}

async fn collect(dist: &Dist, host: &mut HostMatrix) -> Result<(), AcError> {
    for j in 0..dist.nblocks {
        let w = dist.width(j);
        let payload = dist.slots[dist.owner(j)]
            .d2h(dist.col_ptr(j), (dist.m * w * 8) as u64)
            .await?;
        host.set_columns_payload(j * dist.nb, w, &payload);
    }
    for slot in &dist.slots {
        slot.free(slot.base).await?;
        slot.free(slot.panel_ws).await?;
        slot.free(slot.t_ws).await?;
        slot.free(slot.scratch).await?;
        slot.sync().await?;
    }
    Ok(())
}

/// Pack an lda-strided `rows × cols` region into the slot's scratch buffer
/// (no host transfer).
async fn pack_to_scratch(
    slot: &Slot,
    src: DevicePtr,
    ld: usize,
    rows: usize,
    cols: usize,
) -> Result<(), AcError> {
    use dacc_vgpu::kernel::KernelArg as A;
    slot.launch(
        "la.pack",
        launch_cfg(rows, cols),
        &[
            A::Ptr(src),
            A::U64(ld as u64),
            A::U64(rows as u64),
            A::U64(cols as u64),
            A::Ptr(slot.scratch),
        ],
    )
    .await?;
    Ok(())
}

/// Fetch an lda-strided `rows × cols` region to the host: pack on the
/// device into scratch, then one contiguous D2H.
async fn fetch_strided(
    slot: &Slot,
    src: DevicePtr,
    ld: usize,
    rows: usize,
    cols: usize,
) -> Result<Payload, AcError> {
    pack_to_scratch(slot, src, ld, rows, cols).await?;
    slot.d2h(slot.scratch, (rows * cols * 8) as u64).await
}

/// Store a dense host payload into an lda-strided region: one contiguous
/// H2D into scratch, then unpack on the device.
async fn store_strided(
    slot: &Slot,
    payload: &Payload,
    dst: DevicePtr,
    ld: usize,
    rows: usize,
    cols: usize,
) -> Result<(), AcError> {
    use dacc_vgpu::kernel::KernelArg as A;
    slot.h2d(payload, slot.scratch).await?;
    slot.launch(
        "la.unpack",
        launch_cfg(rows, cols),
        &[
            A::Ptr(slot.scratch),
            A::Ptr(dst),
            A::U64(ld as u64),
            A::U64(rows as u64),
            A::U64(cols as u64),
        ],
    )
    .await?;
    Ok(())
}

fn cpu_time(flops: f64, cfg: &HybridConfig) -> SimDuration {
    SimDuration::from_secs_f64(flops / (cfg.cpu_panel_gflops * 1e9))
}

/// Hybrid lower Cholesky factorization (`magma_dpotrf_mgpu` equivalent).
///
/// `host` must be symmetric positive definite (functional mode); on return
/// its lower triangle holds `L`. Works on 1…g devices, local or remote.
pub async fn dpotrf_hybrid(
    handle: &SimHandle,
    devices: &[AcDevice],
    host: &mut HostMatrix,
    cfg: &HybridConfig,
) -> Result<HybridReport, AcError> {
    let n = host.cols();
    assert_eq!(host.rows(), n, "Cholesky needs a square matrix");
    let dist = setup(devices, host, cfg.nb, cfg.streams).await?;
    let start = handle.now();

    for k in 0..dist.nblocks {
        let kb = dist.width(k);
        let col0 = k * cfg.nb;
        let owner = dist.owner(k);
        let col_ptr = dist.col_ptr(k);
        let diag_ptr = col_ptr.offset((col0 * 8) as u64);
        let owner_slot = &dist.slots[owner];

        // 1. Diagonal block to the CPU, factor, and back (small: kb × kb).
        let diag = fetch_strided(owner_slot, diag_ptr, dist.m, kb, kb).await?;
        handle
            .delay(cpu_time(kb as f64 * kb as f64 * kb as f64 / 3.0, cfg))
            .await;
        let factored = if host.is_real() {
            let mut block = payload_to_f64(&diag);
            dpotf2(kb, &mut block, kb).map_err(|e| AcError::Local(e.to_string()))?;
            f64_to_payload(&block)
        } else {
            Payload::size_only((kb * kb * 8) as u64)
        };
        store_strided(owner_slot, &factored, diag_ptr, dist.m, kb, kb).await?;

        let rows_below = n - col0 - kb;
        if rows_below > 0 {
            // 2. Panel solve on the owner GPU:
            //    A[col0+kb.., k-block] ← A · L_kk⁻ᵀ.
            let panel_ptr = col_ptr.offset(((col0 + kb) * 8) as u64);
            owner_slot
                .launch(
                    "la.dtrsm_rlt",
                    launch_cfg(rows_below, kb),
                    &dtrsm_rlt_args(rows_below, kb, diag_ptr, dist.m, panel_ptr, dist.m),
                )
                .await?;

            // 3. Broadcast the solved panel to the *other* devices (the
            //    owner updates straight from its own column).
            let receivers: Vec<usize> = (0..dist.g())
                .filter(|&d| d != owner && dist.trailing(d, k).is_some())
                .collect();
            if !receivers.is_empty() {
                let bytes = (rows_below * kb * 8) as u64;
                match cfg.broadcast {
                    PanelBroadcast::ViaHost => {
                        // Pack + D2H once, then fan out over the CN's NIC.
                        let ph =
                            fetch_strided(owner_slot, panel_ptr, dist.m, rows_below, kb).await?;
                        broadcast_panel(
                            &dist,
                            owner,
                            bytes,
                            &receivers,
                            PanelBroadcast::ViaHost,
                            Some(&ph),
                        )
                        .await?;
                    }
                    PanelBroadcast::PeerDirect => {
                        // Pack on the owner, then stream daemon-to-daemon.
                        pack_to_scratch(owner_slot, panel_ptr, dist.m, rows_below, kb).await?;
                        broadcast_panel(
                            &dist,
                            owner,
                            bytes,
                            &receivers,
                            PanelBroadcast::PeerDirect,
                            None,
                        )
                        .await?;
                    }
                }
            }

            // 4. Trailing update on every device, concurrently.
            let futures: Vec<_> = (0..dist.g())
                .filter_map(|d| {
                    let (trail_ptr, _cols) = dist.trailing(d, k)?;
                    let slot = &dist.slots[d];
                    let (p_ptr, p_ld) = if d == owner {
                        (panel_ptr, dist.m)
                    } else {
                        (slot.panel_ws, rows_below)
                    };
                    let dist_ref = &dist;
                    Some(async move {
                        // Update each local trailing block column j:
                        // A[j·nb.., j] −= P[j·nb−(col0+kb)..] · P_jᵀ.
                        let g = dist_ref.g();
                        let l0 = dist_ref.first_trailing_local(d, k);
                        let mut local_off = 0usize;
                        for l in l0..slot.local_blocks {
                            let j = l * g + d;
                            let jb = dist_ref.width(j);
                            let jrow = j * cfg.nb;
                            let mj = n - jrow;
                            let c_ptr = trail_ptr
                                .offset((local_off * dist_ref.m * 8) as u64)
                                .offset((jrow * 8) as u64);
                            let prow = jrow - (col0 + kb);
                            let a_ptr = p_ptr.offset((prow * 8) as u64);
                            let b_ptr = a_ptr;
                            slot.launch(
                                "la.dgemm",
                                launch_cfg(mj, jb),
                                &dgemm_args(
                                    Trans::No,
                                    Trans::Yes,
                                    mj,
                                    jb,
                                    kb,
                                    -1.0,
                                    a_ptr,
                                    p_ld,
                                    b_ptr,
                                    p_ld,
                                    1.0,
                                    c_ptr,
                                    dist_ref.m,
                                ),
                            )
                            .await?;
                            local_off += dist_ref.nb;
                        }
                        Ok::<(), AcError>(())
                    })
                })
                .collect();
            for r in join_all(futures).await {
                r?;
            }
        }
    }

    // Streamed work is asynchronous: drain every device before reading the
    // clock so the timed region covers the whole factorization.
    for slot in &dist.slots {
        slot.sync().await?;
    }
    let elapsed = handle.now().since(start);
    collect(&dist, host).await?;
    let flops = cholesky_flops(n);
    Ok(HybridReport {
        elapsed,
        flops,
        gflops: flops / elapsed.as_secs_f64() / 1e9,
        tau: Vec::new(),
    })
}

/// CPU-side panel factorization: charge the panel time, and in functional
/// mode run the real `dgeqr2` + `dlarft`. Returns (factored panel, T, tau).
async fn factor_panel(
    handle: &SimHandle,
    functional: bool,
    cfg: &HybridConfig,
    panel: Payload,
    mk: usize,
    kb: usize,
) -> (Payload, Payload, Vec<f64>) {
    let panel_flops = 2.5 * mk as f64 * (kb * kb) as f64;
    handle.delay(cpu_time(panel_flops, cfg)).await;
    if functional {
        let mut p = payload_to_f64(&panel);
        let tau = dgeqr2(mk, kb, &mut p, mk);
        let t = dlarft(mk, kb, &p, mk, &tau);
        (f64_to_payload(&p), f64_to_payload(&t), tau)
    } else {
        (
            Payload::size_only((mk * kb * 8) as u64),
            Payload::size_only((kb * kb * 8) as u64),
            Vec::new(),
        )
    }
}

/// Hybrid Householder QR factorization (`magma_dgeqrf2_mgpu` equivalent).
///
/// On return `host` holds `R` on/above the diagonal and the reflectors
/// below it; `tau` is in the report (functional mode).
pub async fn dgeqrf_hybrid(
    handle: &SimHandle,
    devices: &[AcDevice],
    host: &mut HostMatrix,
    cfg: &HybridConfig,
) -> Result<HybridReport, AcError> {
    let (m, n) = (host.rows(), host.cols());
    let dist = setup(devices, host, cfg.nb, cfg.streams).await?;
    let start = handle.now();
    let mut tau_all = Vec::new();

    // With lookahead, the panel for iteration k+1 is fetched and factored
    // on the CPU while the devices run iteration k's trailing update.
    let mut pending: Option<(Payload, Payload, Vec<f64>)> = None;

    for k in 0..dist.nblocks {
        let kb = dist.width(k);
        let col0 = k * cfg.nb;
        let mk = m - col0;
        let owner = dist.owner(k);
        let col_ptr = dist.col_ptr(k);
        let panel_ptr = col_ptr.offset((col0 * 8) as u64);
        let owner_slot = &dist.slots[owner];

        // 1. Panel to the CPU (mk × kb), factor + build T, panel back —
        //    unless the previous iteration already produced it (lookahead).
        let (factored, t_payload, tau) = match pending.take() {
            Some(x) => x,
            None => {
                let panel = fetch_strided(owner_slot, panel_ptr, dist.m, mk, kb).await?;
                factor_panel(handle, host.is_real(), cfg, panel, mk, kb).await
            }
        };
        tau_all.extend_from_slice(&tau);
        store_strided(owner_slot, &factored, panel_ptr, dist.m, mk, kb).await?;

        // 2. Broadcast V (the factored panel; unit-lower part is what the
        //    kernel uses) and T to devices with trailing columns. After
        //    `store_strided`, the owner's scratch still holds the packed
        //    factored panel, so PeerDirect can stream it daemon-to-daemon.
        let receivers: Vec<usize> = (0..dist.g())
            .filter(|&d| d != owner && dist.trailing(d, k).is_some())
            .collect();
        broadcast_panel(
            &dist,
            owner,
            (mk * kb * 8) as u64,
            &receivers,
            cfg.broadcast,
            Some(&factored),
        )
        .await?;
        for d in 0..dist.g() {
            if dist.trailing(d, k).is_none() {
                continue;
            }
            dist.slots[d].h2d(&t_payload, dist.slots[d].t_ws).await?;
        }

        // 3. Apply the block reflector to each device's trailing columns.
        //    With lookahead, the device owning block k+1 updates that
        //    column first, ships the next panel to the host, and only then
        //    updates the rest — so the CPU factors panel k+1 concurrently.
        let next_k = k + 1;
        let lookahead = cfg.lookahead && next_k < dist.nblocks;
        let owner_next = dist.owner(next_k % dist.nblocks.max(1));
        let (panel_tx, panel_rx) = oneshot::<Payload>();
        let mut panel_tx = Some(panel_tx);

        let mut futures: Vec<UpdateFuture<'_>> = Vec::new();
        for d in 0..dist.g() {
            let Some((trail_ptr, cols)) = dist.trailing(d, k) else {
                continue;
            };
            let slot = &dist.slots[d];
            let (v_ptr, v_ld) = if d == owner {
                (panel_ptr, dist.m)
            } else {
                (slot.panel_ws, mk)
            };
            let c_ptr = trail_ptr.offset((col0 * 8) as u64);
            let ldm = dist.m;
            let t_ws = slot.t_ws;
            if lookahead && d == owner_next {
                // This device's first trailing block IS block k+1.
                let kb_next = dist.width(next_k);
                let col0_next = next_k * cfg.nb;
                let mk_next = m - col0_next;
                let next_panel_ptr = dist.col_ptr(next_k).offset((col0_next * 8) as u64);
                let tx = panel_tx.take().expect("one lookahead owner");
                let nb = cfg.nb;
                futures.push(Box::pin(async move {
                    // Update column block k+1 first...
                    slot.launch(
                        "la.dlarfb",
                        launch_cfg(mk, kb_next),
                        &dlarfb_args(mk, kb_next, kb, v_ptr, v_ld, t_ws, c_ptr, ldm),
                    )
                    .await?;
                    // ...ship the next panel to the host...
                    let p = fetch_strided(slot, next_panel_ptr, ldm, mk_next, kb_next).await?;
                    tx.send(p);
                    // ...then update the remaining local columns.
                    if cols > kb_next {
                        let rest_ptr = trail_ptr
                            .offset((nb * ldm * 8) as u64)
                            .offset((col0 * 8) as u64);
                        slot.launch(
                            "la.dlarfb",
                            launch_cfg(mk, cols - kb_next),
                            &dlarfb_args(mk, cols - kb_next, kb, v_ptr, v_ld, t_ws, rest_ptr, ldm),
                        )
                        .await?;
                    }
                    Ok(())
                }));
            } else {
                futures.push(Box::pin(async move {
                    slot.launch(
                        "la.dlarfb",
                        launch_cfg(mk, cols),
                        &dlarfb_args(mk, cols, kb, v_ptr, v_ld, t_ws, c_ptr, ldm),
                    )
                    .await
                }));
            }
        }

        let functional = host.is_real();
        let panel_task = async {
            if lookahead {
                let p = panel_rx.await.expect("lookahead panel never shipped");
                let kb_next = dist.width(next_k);
                let mk_next = m - next_k * cfg.nb;
                Some(factor_panel(handle, functional, cfg, p, mk_next, kb_next).await)
            } else {
                None
            }
        };
        let (update_results, next_pending) = join2(join_all(futures), panel_task).await;
        for r in update_results {
            r?;
        }
        pending = next_pending;
    }

    // Streamed work is asynchronous: drain every device before reading the
    // clock so the timed region covers the whole factorization.
    for slot in &dist.slots {
        slot.sync().await?;
    }
    let elapsed = handle.now().since(start);
    collect(&dist, host).await?;
    let flops = qr_flops(m, n);
    Ok(HybridReport {
        elapsed,
        flops,
        gflops: flops / elapsed.as_secs_f64() / 1e9,
        tau: tau_all,
    })
}
