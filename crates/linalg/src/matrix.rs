//! Column-major dense matrices (LAPACK convention).

use dacc_fabric::payload::Payload;
use dacc_sim::rng::SimRng;

/// A dense column-major matrix with `lda == rows`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Random entries uniform in `[-1, 1]`.
    pub fn random(rows: usize, cols: usize, rng: &mut SimRng) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.uniform_range(-1.0, 1.0);
        }
        m
    }

    /// Random symmetric positive-definite matrix (`B Bᵀ + n·I`).
    pub fn random_spd(n: usize, rng: &mut SimRng) -> Self {
        let b = Matrix::random(n, n, rng);
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += b.get(i, k) * b.get(j, k);
                }
                a.set(i, j, s + if i == j { n as f64 } else { 0.0 });
            }
        }
        a
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension (equals `rows`).
    pub fn lda(&self) -> usize {
        self.rows
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.rows + i]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.rows + i] = v;
    }

    /// The backing column-major slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The backing column-major slice, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Copy of columns `[j0, j0+w)` as a dense `rows × w` matrix.
    pub fn columns(&self, j0: usize, w: usize) -> Matrix {
        assert!(j0 + w <= self.cols);
        Matrix {
            rows: self.rows,
            cols: w,
            data: self.data[j0 * self.rows..(j0 + w) * self.rows].to_vec(),
        }
    }

    /// Overwrite columns `[j0, j0+w)` from `src` (must be `rows × w`).
    pub fn set_columns(&mut self, j0: usize, src: &Matrix) {
        assert_eq!(src.rows, self.rows);
        assert!(j0 + src.cols <= self.cols);
        self.data[j0 * self.rows..(j0 + src.cols) * self.rows].copy_from_slice(&src.data);
    }

    /// Copy of the sub-matrix at `(i0, j0)` of size `m × n`.
    pub fn sub(&self, i0: usize, j0: usize, m: usize, n: usize) -> Matrix {
        assert!(i0 + m <= self.rows && j0 + n <= self.cols);
        Matrix::from_fn(m, n, |i, j| self.get(i0 + i, j0 + j))
    }

    /// Matrix product `self · other` (naive; verification only).
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows);
        let mut c = Matrix::zeros(self.rows, other.cols);
        for j in 0..other.cols {
            for k in 0..self.cols {
                let bkj = other.get(k, j);
                if bkj != 0.0 {
                    for i in 0..self.rows {
                        c.data[j * c.rows + i] += self.get(i, k) * bkj;
                    }
                }
            }
        }
        c
    }

    /// Transpose (verification only).
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// `max |self - other|` over all entries.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Zero the strictly upper triangle (extract `L` from a factored
    /// lower-triangular storage).
    pub fn lower_triangle(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            if i >= j {
                self.get(i, j)
            } else {
                0.0
            }
        })
    }

    /// Zero the strictly lower triangle (extract `R`).
    pub fn upper_triangle(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            if i <= j {
                self.get(i, j)
            } else {
                0.0
            }
        })
    }
}

/// A host-side matrix that may be real (functional runs) or shape-only
/// (timing-only runs at paper scale). The hybrid factorization drivers work
/// on either; the same control flow and the same transfer sizes are used.
pub enum HostMatrix {
    /// Real data.
    Real(Matrix),
    /// Dimensions only.
    Shape {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
}

impl HostMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            HostMatrix::Real(m) => m.rows(),
            HostMatrix::Shape { rows, .. } => *rows,
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            HostMatrix::Real(m) => m.cols(),
            HostMatrix::Shape { cols, .. } => *cols,
        }
    }

    /// True if backed by real data.
    pub fn is_real(&self) -> bool {
        matches!(self, HostMatrix::Real(_))
    }

    /// Borrow the real matrix (panics for shape-only).
    pub fn real(&self) -> &Matrix {
        match self {
            HostMatrix::Real(m) => m,
            HostMatrix::Shape { .. } => panic!("HostMatrix::real on shape-only matrix"),
        }
    }

    /// Borrow the real matrix mutably (panics for shape-only).
    pub fn real_mut(&mut self) -> &mut Matrix {
        match self {
            HostMatrix::Real(m) => m,
            HostMatrix::Shape { .. } => panic!("HostMatrix::real_mut on shape-only matrix"),
        }
    }

    /// Columns `[j0, j0+w)` as a transfer payload (`rows·w·8` bytes).
    pub fn columns_payload(&self, j0: usize, w: usize) -> Payload {
        match self {
            HostMatrix::Real(m) => {
                let sub = m.columns(j0, w);
                let mut bytes = Vec::with_capacity(sub.as_slice().len() * 8);
                for v in sub.as_slice() {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
                Payload::from_vec(bytes)
            }
            HostMatrix::Shape { rows, .. } => Payload::size_only((rows * w * 8) as u64),
        }
    }

    /// Overwrite columns `[j0, j0+w)` from a transfer payload.
    pub fn set_columns_payload(&mut self, j0: usize, w: usize, payload: &Payload) {
        let rows = self.rows();
        assert_eq!(
            payload.len(),
            (rows * w * 8) as u64,
            "payload size mismatch"
        );
        if let HostMatrix::Real(m) = self {
            // to_bytes(): accept chained payloads too (an f64 may straddle
            // a segment boundary).
            let bytes = payload.to_bytes();
            let vals: Vec<f64> = bytes
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            let sub = Matrix {
                rows,
                cols: w,
                data: vals,
            };
            m.set_columns(j0, &sub);
        }
    }
}

/// Decode a payload of `f64`s (functional-mode helper). Accepts both
/// contiguous and chained payloads; panics on size-only.
pub fn payload_to_f64(p: &Payload) -> Vec<f64> {
    p.to_bytes()
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Encode `f64`s as a payload.
pub fn f64_to_payload(v: &[f64]) -> Payload {
    let mut bytes = Vec::with_capacity(v.len() * 8);
    for x in v {
        bytes.extend_from_slice(&x.to_le_bytes());
    }
    Payload::from_vec(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.get(2, 1), 21.0);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        // Column-major layout.
        assert_eq!(m.as_slice(), &[0.0, 10.0, 20.0, 1.0, 11.0, 21.0]);
    }

    #[test]
    fn identity_times_anything() {
        let mut rng = SimRng::new(1);
        let a = Matrix::random(4, 4, &mut rng);
        let i = Matrix::identity(4);
        assert_eq!(i.mul(&a), a);
        assert_eq!(a.mul(&i), a);
    }

    #[test]
    fn columns_roundtrip() {
        let mut rng = SimRng::new(2);
        let a = Matrix::random(5, 6, &mut rng);
        let cols = a.columns(2, 3);
        let mut b = Matrix::zeros(5, 6);
        b.set_columns(2, &cols);
        assert_eq!(b.sub(0, 2, 5, 3), a.sub(0, 2, 5, 3));
    }

    #[test]
    fn spd_is_symmetric_with_dominant_diagonal() {
        let mut rng = SimRng::new(3);
        let a = Matrix::random_spd(8, &mut rng);
        for i in 0..8 {
            for j in 0..8 {
                assert!((a.get(i, j) - a.get(j, i)).abs() < 1e-12);
            }
            assert!(a.get(i, i) >= 8.0);
        }
    }

    #[test]
    fn triangles() {
        let a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j + 1) as f64);
        let l = a.lower_triangle();
        assert_eq!(l.get(0, 1), 0.0);
        assert_eq!(l.get(1, 0), a.get(1, 0));
        let u = a.upper_triangle();
        assert_eq!(u.get(1, 0), 0.0);
        assert_eq!(u.get(0, 1), a.get(0, 1));
    }

    #[test]
    fn host_matrix_payload_roundtrip() {
        let mut rng = SimRng::new(4);
        let a = Matrix::random(7, 5, &mut rng);
        let mut h = HostMatrix::Real(a.clone());
        let p = h.columns_payload(1, 3);
        assert_eq!(p.len(), 7 * 3 * 8);
        let mut dst = HostMatrix::Real(Matrix::zeros(7, 5));
        dst.set_columns_payload(1, 3, &p);
        assert_eq!(dst.real().sub(0, 1, 7, 3), a.sub(0, 1, 7, 3));
        // Shape-only: sizes must agree, contents ignored.
        let mut shape = HostMatrix::Shape { rows: 7, cols: 5 };
        let sp = shape.columns_payload(0, 5);
        assert_eq!(sp.len(), 7 * 5 * 8);
        shape.set_columns_payload(0, 5, &sp);
        h.set_columns_payload(0, 3, &h.columns_payload(0, 3));
    }

    #[test]
    fn f64_payload_roundtrip() {
        let v = vec![1.5, -2.25, 0.0, 1e300];
        assert_eq!(payload_to_f64(&f64_to_payload(&v)), v);
    }
}
