//! LAPACK-style factorizations on the CPU.
//!
//! These serve three roles: (i) reference implementations that the hybrid
//! GPU routines are verified against, (ii) the real panel work inside the
//! hybrid routines (`dpotf2`, `dgeqr2`, `dlarft`), and (iii) the functional
//! bodies of several GPU kernels.

use crate::blas::{daxpy, ddot, dgemm, dger, dnrm2, dscal, dsyrk, dtrsm, Diag, Side, Trans, UpLo};
use crate::matrix::Matrix;

/// Error from a factorization.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LapackError {
    /// The leading minor of this (1-based) order is not positive definite.
    NotPositiveDefinite(usize),
}

impl std::fmt::Display for LapackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LapackError::NotPositiveDefinite(k) => {
                write!(f, "matrix not positive definite at minor {k}")
            }
        }
    }
}
impl std::error::Error for LapackError {}

/// Unblocked lower Cholesky of the leading `n × n` of `a` (lda-strided).
/// On success the lower triangle holds `L`.
pub fn dpotf2(n: usize, a: &mut [f64], lda: usize) -> Result<(), LapackError> {
    for j in 0..n {
        let mut ajj = a[j * lda + j] - ddot(j, &a[j..], lda, &a[j..], lda);
        if ajj <= 0.0 || !ajj.is_finite() {
            return Err(LapackError::NotPositiveDefinite(j + 1));
        }
        ajj = ajj.sqrt();
        a[j * lda + j] = ajj;
        if j + 1 < n {
            // A[j+1.., j] -= A[j+1.., 0..j] * A[j, 0..j]ᵀ  then scale.
            for k in 0..j {
                let ajk = a[k * lda + j];
                if ajk != 0.0 {
                    for i in j + 1..n {
                        a[j * lda + i] -= ajk * a[k * lda + i];
                    }
                }
            }
            dscal(n - j - 1, 1.0 / ajj, &mut a[j * lda + j + 1..], 1);
        }
    }
    Ok(())
}

/// Blocked lower Cholesky (CPU reference): right-looking, block size `nb`.
pub fn dpotrf(n: usize, a: &mut [f64], lda: usize, nb: usize) -> Result<(), LapackError> {
    let mut k = 0;
    while k < n {
        let kb = nb.min(n - k);
        // Diagonal block.
        let diag_off = k * lda + k;
        dpotf2(kb, &mut a[diag_off..], lda).map_err(|LapackError::NotPositiveDefinite(i)| {
            LapackError::NotPositiveDefinite(k + i)
        })?;
        let rest = n - k - kb;
        if rest > 0 {
            // Panel: A[k+kb.., k..k+kb] := A[k+kb.., k..k+kb] * L_kkᵀ⁻¹.
            let (diag_block, _) = split_at_owned(a, diag_off);
            let panel_off = k * lda + k + kb;
            dtrsm(
                Side::Right,
                UpLo::Lower,
                Trans::Yes,
                Diag::NonUnit,
                rest,
                kb,
                1.0,
                &diag_block,
                lda,
                &mut a[panel_off..],
                lda,
            );
            // Trailing update: A22 -= L21 L21ᵀ (lower triangle).
            let panel = copy_block(a, lda, k + kb, k, rest, kb);
            dsyrk(
                UpLo::Lower,
                Trans::No,
                rest,
                kb,
                -1.0,
                &panel,
                rest,
                1.0,
                &mut a[(k + kb) * lda + k + kb..],
                lda,
            );
        }
        k += kb;
    }
    Ok(())
}

/// Copy an `m × n` lda-strided block starting at `(i0, j0)` into a dense
/// column-major buffer.
pub fn copy_block(a: &[f64], lda: usize, i0: usize, j0: usize, m: usize, n: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(m * n);
    for j in 0..n {
        let base = (j0 + j) * lda + i0;
        out.extend_from_slice(&a[base..base + m]);
    }
    out
}

/// Write a dense `m × n` buffer back into an lda-strided block.
pub fn write_block(
    a: &mut [f64],
    lda: usize,
    i0: usize,
    j0: usize,
    m: usize,
    n: usize,
    src: &[f64],
) {
    for j in 0..n {
        let base = (j0 + j) * lda + i0;
        a[base..base + m].copy_from_slice(&src[j * m..(j + 1) * m]);
    }
}

fn split_at_owned(a: &[f64], off: usize) -> (Vec<f64>, ()) {
    (a[off..].to_vec(), ())
}

/// Unblocked Householder QR of the `m × n` panel in `a` (lda-strided).
/// Returns the scalar factors `tau`; reflectors are stored below the
/// diagonal (implicit unit), `R` on and above it. (LAPACK `dgeqr2`.)
pub fn dgeqr2(m: usize, n: usize, a: &mut [f64], lda: usize) -> Vec<f64> {
    let kmax = m.min(n);
    let mut tau = vec![0.0; kmax];
    for k in 0..kmax {
        // Generate the reflector for column k.
        let alpha = a[k * lda + k];
        let xnorm = if k + 1 < m {
            dnrm2(m - k - 1, &a[k * lda + k + 1..], 1)
        } else {
            0.0
        };
        if xnorm == 0.0 {
            tau[k] = 0.0;
            continue;
        }
        let beta = -alpha.signum() * (alpha * alpha + xnorm * xnorm).sqrt();
        tau[k] = (beta - alpha) / beta;
        let scale = 1.0 / (alpha - beta);
        dscal(m - k - 1, scale, &mut a[k * lda + k + 1..], 1);
        a[k * lda + k] = beta;

        // Apply H = I - tau v vᵀ to the trailing columns A[k.., k+1..].
        if k + 1 < n {
            // v = [1; A[k+1.., k]]
            for j in k + 1..n {
                let mut w = a[j * lda + k]; // v0 * A[k, j]
                w += ddot(
                    m - k - 1,
                    &a[k * lda + k + 1..],
                    1,
                    &a[j * lda + k + 1..],
                    1,
                );
                let t = -tau[k] * w;
                a[j * lda + k] += t;
                daxpy(
                    m - k - 1,
                    t,
                    &copy_col(a, lda, k, k + 1, m - k - 1),
                    1,
                    &mut a[j * lda + k + 1..],
                    1,
                );
            }
        }
    }
    tau
}

fn copy_col(a: &[f64], lda: usize, col: usize, row0: usize, len: usize) -> Vec<f64> {
    a[col * lda + row0..col * lda + row0 + len].to_vec()
}

/// Build the upper-triangular block reflector factor `T` (`k × k`) from the
/// panel `v` (`m × k`, unit lower, reflectors below the diagonal) and `tau`.
/// (LAPACK `dlarft`, forward/columnwise.)
pub fn dlarft(m: usize, k: usize, v: &[f64], ldv: usize, tau: &[f64]) -> Vec<f64> {
    let mut t = vec![0.0; k * k];
    for i in 0..k {
        if tau[i] == 0.0 {
            continue;
        }
        // w = Vᵀ[:, 0..i] v_i  where v_i = [zeros(i); 1; V[i+1.., i]].
        // Using the unit-lower structure: for column c < i:
        //   w[c] = V[i, c] + Σ_{r>i} V[r, c] V[r, i]
        let mut w = vec![0.0; i];
        for (c, wc) in w.iter_mut().enumerate() {
            let mut s = v[c * ldv + i]; // V[i, c] (v_i has 1 at row i)
            for r in i + 1..m {
                s += v[c * ldv + r] * v[i * ldv + r];
            }
            *wc = s;
        }
        // T[0..i, i] = -tau_i * T[0..i, 0..i] * w
        for r in 0..i {
            let mut s = 0.0;
            for c in r..i {
                s += t[c * k + r] * w[c];
            }
            t[i * k + r] = -tau[i] * s;
        }
        t[i * k + i] = tau[i];
    }
    t
}

/// Apply the block reflector `Hᵀ = (I − V T Vᵀ)ᵀ` from the left to the
/// `m × n` matrix `c` (lda-strided). `v` is `m × k` with unit lower
/// triangle; `t` is `k × k` upper triangular. (LAPACK `dlarfb`,
/// left/transpose/forward/columnwise — the QR trailing update.)
#[allow(clippy::too_many_arguments)]
pub fn dlarfb_left_trans(
    m: usize,
    n: usize,
    k: usize,
    v: &[f64],
    ldv: usize,
    t: &[f64],
    c: &mut [f64],
    ldc: usize,
) {
    // Materialize V with its unit-lower structure.
    let mut vfull = vec![0.0; m * k];
    for j in 0..k {
        for i in 0..m {
            vfull[j * m + i] = match i.cmp(&j) {
                std::cmp::Ordering::Less => 0.0,
                std::cmp::Ordering::Equal => 1.0,
                std::cmp::Ordering::Greater => v[j * ldv + i],
            };
        }
    }
    // W = Vᵀ C  (k × n)
    let mut w = vec![0.0; k * n];
    dgemm(
        Trans::Yes,
        Trans::No,
        k,
        n,
        m,
        1.0,
        &vfull,
        m,
        c,
        ldc,
        0.0,
        &mut w,
        k,
    );
    // W = Tᵀ W
    let mut w2 = vec![0.0; k * n];
    dgemm(
        Trans::Yes,
        Trans::No,
        k,
        n,
        k,
        1.0,
        t,
        k,
        &w,
        k,
        0.0,
        &mut w2,
        k,
    );
    // C -= V W
    dgemm(
        Trans::No,
        Trans::No,
        m,
        n,
        k,
        -1.0,
        &vfull,
        m,
        &w2,
        k,
        1.0,
        c,
        ldc,
    );
}

/// Blocked Householder QR (CPU reference, block size `nb`): panels via
/// [`dgeqr2`], trailing updates via [`dlarfb_left_trans`]. Returns `tau`.
pub fn dgeqrf(m: usize, n: usize, a: &mut [f64], lda: usize, nb: usize) -> Vec<f64> {
    let kmax = m.min(n);
    let mut tau = vec![0.0; kmax];
    let mut k = 0;
    while k < kmax {
        let kb = nb.min(kmax - k);
        let mrem = m - k;
        // Factor the panel A[k.., k..k+kb].
        let panel_off = k * lda + k;
        let ptau = dgeqr2(mrem, kb, &mut a[panel_off..], lda);
        tau[k..k + kb].copy_from_slice(&ptau);
        // Trailing update.
        if k + kb < n {
            let t = dlarft(mrem, kb, &a[panel_off..], lda, &ptau);
            let v = copy_block(a, lda, k, k, mrem, kb);
            let trail_off = (k + kb) * lda + k;
            dlarfb_left_trans(mrem, n - k - kb, kb, &v, mrem, &t, &mut a[trail_off..], lda);
        }
        k += kb;
    }
    tau
}

/// Explicitly build `Q` (`m × m`) from a factored QR (`a` holding
/// reflectors, `tau`) by applying `H_1 ⋯ H_k` to the identity.
/// Verification-scale only.
pub fn build_q(m: usize, a: &Matrix, tau: &[f64]) -> Matrix {
    let mut q = Matrix::identity(m);
    let k = tau.len();
    for j in (0..k).rev() {
        // v = [zeros(j); 1; A[j+1.., j]]
        let mut v = vec![0.0; m];
        v[j] = 1.0;
        for i in j + 1..m {
            v[i] = a.get(i, j);
        }
        // Q := (I - tau v vᵀ) Q
        let mut w = vec![0.0; m]; // w = Qᵀ v
        for c in 0..m {
            let mut s = 0.0;
            for r in j..m {
                s += q.get(r, c) * v[r];
            }
            w[c] = s;
        }
        let qs = q.as_mut_slice();
        dger(m, m, -tau[j], &v, 1, &w, 1, qs, m);
    }
    q
}

/// Relative Cholesky residual `‖A − L Lᵀ‖_F / ‖A‖_F`.
pub fn cholesky_residual(a: &Matrix, factored: &Matrix) -> f64 {
    let l = factored.lower_triangle();
    let llt = l.mul(&l.transpose());
    let mut diff = 0.0;
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            let d = a.get(i, j) - llt.get(i, j);
            diff += d * d;
        }
    }
    diff.sqrt() / a.frob_norm()
}

/// Relative QR residual `‖A − Q R‖_F / ‖A‖_F` plus orthogonality
/// `‖QᵀQ − I‖_F`.
pub fn qr_residuals(a: &Matrix, factored: &Matrix, tau: &[f64]) -> (f64, f64) {
    let m = a.rows();
    let q = build_q(m, factored, tau);
    let r = factored.upper_triangle();
    let qr = q.mul(&r.sub(0, 0, m.min(factored.rows()), factored.cols()));
    let resid = qr.max_abs_diff(a) * (a.rows() * a.cols()) as f64 / a.frob_norm().max(1.0);
    let qtq = q.transpose().mul(&q);
    let orth = qtq.max_abs_diff(&Matrix::identity(m));
    (resid, orth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacc_sim::rng::SimRng;

    #[test]
    fn dpotf2_small_known() {
        // A = [[4, 2], [2, 5]] => L = [[2, 0], [1, 2]]
        let mut a = vec![4.0, 2.0, 2.0, 5.0];
        dpotf2(2, &mut a, 2).unwrap();
        assert!((a[0] - 2.0).abs() < 1e-15);
        assert!((a[1] - 1.0).abs() < 1e-15);
        assert!((a[3] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn dpotf2_rejects_indefinite() {
        let mut a = vec![1.0, 2.0, 2.0, 1.0]; // indefinite
        assert_eq!(
            dpotf2(2, &mut a, 2),
            Err(LapackError::NotPositiveDefinite(2))
        );
    }

    #[test]
    fn blocked_cholesky_matches_unblocked() {
        for n in [1usize, 5, 16, 33, 64] {
            let a = Matrix::random_spd(n, &mut SimRng::new(n as u64));
            let mut x1 = a.clone();
            dpotf2(n, x1.as_mut_slice(), n).unwrap();
            let mut x2 = a.clone();
            dpotrf(n, x2.as_mut_slice(), n, 8).unwrap();
            assert!(
                x1.lower_triangle().max_abs_diff(&x2.lower_triangle()) < 1e-9,
                "n={n}"
            );
        }
    }

    #[test]
    fn blocked_cholesky_residual_small() {
        let n = 48;
        let a = Matrix::random_spd(n, &mut SimRng::new(9));
        let mut f = a.clone();
        dpotrf(n, f.as_mut_slice(), n, 16).unwrap();
        assert!(cholesky_residual(&a, &f) < 1e-12);
    }

    #[test]
    fn dgeqr2_reproduces_a() {
        let (m, n) = (8, 5);
        let a = Matrix::random(m, n, &mut SimRng::new(10));
        let mut f = a.clone();
        let tau = dgeqr2(m, n, f.as_mut_slice(), m);
        let (resid, orth) = qr_residuals(&a, &f, &tau);
        assert!(resid < 1e-10, "residual {resid}");
        assert!(orth < 1e-12, "orthogonality {orth}");
    }

    #[test]
    fn blocked_qr_matches_unblocked() {
        for (m, n) in [(12usize, 12usize), (20, 12), (17, 17), (33, 20)] {
            let a = Matrix::random(m, n, &mut SimRng::new((m * 100 + n) as u64));
            let mut f1 = a.clone();
            let tau1 = dgeqr2(m, n, f1.as_mut_slice(), m);
            let mut f2 = a.clone();
            let tau2 = dgeqrf(m, n, f2.as_mut_slice(), m, 5);
            // R may differ in reflector storage, but R itself (upper part)
            // is unique up to column signs; compare |R|.
            for j in 0..n {
                for i in 0..=j.min(m - 1) {
                    assert!(
                        (f1.get(i, j).abs() - f2.get(i, j).abs()).abs() < 1e-9,
                        "R mismatch at ({i},{j}) for {m}x{n}"
                    );
                }
            }
            // Both reproduce A.
            let (r1, o1) = qr_residuals(&a, &f1, &tau1);
            let (r2, o2) = qr_residuals(&a, &f2, &tau2);
            assert!(r1 < 1e-9 && r2 < 1e-9, "residuals {r1} {r2}");
            assert!(o1 < 1e-11 && o2 < 1e-11);
        }
    }

    #[test]
    fn dlarft_consistent_with_sequential_reflectors() {
        // Applying I - V T Vᵀ must equal applying H_1 H_2 ... H_k.
        let (m, k) = (10, 4);
        let a = Matrix::random(m, k, &mut SimRng::new(11));
        let mut f = a.clone();
        let tau = dgeqr2(m, k, f.as_mut_slice(), m);
        let t = dlarft(m, k, f.as_slice(), m, &tau);

        // Apply blockwise to a random C.
        let c0 = Matrix::random(m, 3, &mut SimRng::new(12));
        let mut c_block = c0.clone();
        dlarfb_left_trans(m, 3, k, f.as_slice(), m, &t, c_block.as_mut_slice(), m);

        // Apply reflectors one by one: C := H_k ... H_1 C (i.e. Qᵀ C).
        let mut c_seq = c0.clone();
        for j in 0..k {
            let mut v = vec![0.0; m];
            v[j] = 1.0;
            for i in j + 1..m {
                v[i] = f.get(i, j);
            }
            for col in 0..3 {
                let mut w = 0.0;
                for r in j..m {
                    w += v[r] * c_seq.get(r, col);
                }
                for r in j..m {
                    let cur = c_seq.get(r, col);
                    c_seq.set(r, col, cur - tau[j] * v[r] * w);
                }
            }
        }
        assert!(c_block.max_abs_diff(&c_seq) < 1e-11);
    }

    #[test]
    fn copy_write_block_roundtrip() {
        let mut a: Vec<f64> = (0..20).map(|x| x as f64).collect(); // 4x5, lda 4
        let blk = copy_block(&a, 4, 1, 1, 2, 3);
        assert_eq!(blk, vec![5.0, 6.0, 9.0, 10.0, 13.0, 14.0]);
        let newblk = vec![-1.0, -2.0, -3.0, -4.0, -5.0, -6.0];
        write_block(&mut a, 4, 1, 1, 2, 3, &newblk);
        assert_eq!(copy_block(&a, 4, 1, 1, 2, 3), newblk);
        assert_eq!(a[0], 0.0);
    }
}

/// Unblocked LU factorization with partial pivoting of the leading
/// `m × n` of `a` (lda-strided). Returns the pivot vector `ipiv`
/// (0-based: row `i` was swapped with `ipiv[i]`).
pub fn dgetf2(m: usize, n: usize, a: &mut [f64], lda: usize) -> Result<Vec<usize>, LapackError> {
    let kmax = m.min(n);
    let mut ipiv = Vec::with_capacity(kmax);
    for k in 0..kmax {
        // Pivot search in column k.
        let mut piv = k;
        let mut best = a[k * lda + k].abs();
        for i in k + 1..m {
            let v = a[k * lda + i].abs();
            if v > best {
                best = v;
                piv = i;
            }
        }
        if best == 0.0 {
            return Err(LapackError::NotPositiveDefinite(k + 1)); // singular
        }
        ipiv.push(piv);
        if piv != k {
            for j in 0..n {
                a.swap(j * lda + k, j * lda + piv);
            }
        }
        // Scale the column and update the trailing matrix.
        let akk = a[k * lda + k];
        for i in k + 1..m {
            a[k * lda + i] /= akk;
        }
        for j in k + 1..n {
            let akj = a[j * lda + k];
            if akj != 0.0 {
                for i in k + 1..m {
                    a[j * lda + i] -= a[k * lda + i] * akj;
                }
            }
        }
    }
    Ok(ipiv)
}

/// Blocked LU with partial pivoting (right-looking, block size `nb`).
pub fn dgetrf(
    m: usize,
    n: usize,
    a: &mut [f64],
    lda: usize,
    nb: usize,
) -> Result<Vec<usize>, LapackError> {
    let kmax = m.min(n);
    let mut ipiv = vec![0usize; kmax];
    let mut k = 0;
    while k < kmax {
        let kb = nb.min(kmax - k);
        // Factor the panel A[k.., k..k+kb].
        let piv = dgetf2(m - k, kb, &mut a[k * lda + k..], lda).map_err(
            |LapackError::NotPositiveDefinite(i)| LapackError::NotPositiveDefinite(k + i),
        )?;
        // Apply the panel's row swaps to the rest of the matrix and record
        // global pivots.
        for (i, &p) in piv.iter().enumerate() {
            ipiv[k + i] = k + p;
            if p != i {
                for j in (0..k).chain(k + kb..n) {
                    a.swap(j * lda + k + i, j * lda + k + p);
                }
            }
        }
        if k + kb < n {
            // U block row: solve L11 · U12 = A12.
            let l11 = copy_block(a, lda, k, k, kb, kb);
            dtrsm(
                Side::Left,
                UpLo::Lower,
                Trans::No,
                Diag::Unit,
                kb,
                n - k - kb,
                1.0,
                &l11,
                kb,
                &mut a[(k + kb) * lda + k..],
                lda,
            );
            // Trailing update: A22 -= L21 · U12.
            if k + kb < m {
                let l21 = copy_block(a, lda, k + kb, k, m - k - kb, kb);
                let u12 = copy_block(a, lda, k, k + kb, kb, n - k - kb);
                dgemm(
                    Trans::No,
                    Trans::No,
                    m - k - kb,
                    n - k - kb,
                    kb,
                    -1.0,
                    &l21,
                    m - k - kb,
                    &u12,
                    kb,
                    1.0,
                    &mut a[(k + kb) * lda + k + kb..],
                    lda,
                );
            }
        }
        k += kb;
    }
    Ok(ipiv)
}

/// Solve `A x = b` using a factorization from [`dgetrf`] (single RHS,
/// overwrites `b` with `x`).
pub fn dgetrs(n: usize, a: &[f64], lda: usize, ipiv: &[usize], b: &mut [f64]) {
    // Apply pivots.
    for (i, &p) in ipiv.iter().enumerate() {
        if p != i {
            b.swap(i, p);
        }
    }
    // Forward substitution with unit-lower L.
    for i in 0..n {
        let mut s = b[i];
        for j in 0..i {
            s -= a[j * lda + i] * b[j];
        }
        b[i] = s;
    }
    // Back substitution with U.
    for i in (0..n).rev() {
        let mut s = b[i];
        for j in i + 1..n {
            s -= a[j * lda + i] * b[j];
        }
        b[i] = s / a[i * lda + i];
    }
}

#[cfg(test)]
mod lu_tests {
    use super::*;
    use dacc_sim::rng::SimRng;

    #[test]
    fn lu_solves_linear_systems() {
        for n in [1usize, 3, 8, 20, 33] {
            let mut rng = SimRng::new(n as u64);
            let a = Matrix::random(n, n, &mut rng);
            // Make it well conditioned: add n to the diagonal.
            let a = Matrix::from_fn(n, n, |i, j| {
                a.get(i, j) + if i == j { n as f64 } else { 0.0 }
            });
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
            let mut b = vec![0.0; n];
            for i in 0..n {
                for j in 0..n {
                    b[i] += a.get(i, j) * x_true[j];
                }
            }
            let mut f = a.clone();
            let ipiv = dgetrf(n, n, f.as_mut_slice(), n, 5).unwrap();
            dgetrs(n, f.as_slice(), n, &ipiv, &mut b);
            for (xi, ti) in b.iter().zip(&x_true) {
                assert!((xi - ti).abs() < 1e-9, "n={n}: {xi} vs {ti}");
            }
        }
    }

    #[test]
    fn blocked_lu_matches_unblocked() {
        let n = 24;
        let mut rng = SimRng::new(7);
        let noise = Matrix::random(n, n, &mut rng);
        let a = Matrix::from_fn(n, n, |i, j| {
            let diag = if i == j { 10.0 } else { 0.0 };
            diag + (i as f64 - j as f64) / (n as f64) + noise.get(i, j)
        });
        let mut f1 = a.clone();
        let p1 = dgetf2(n, n, f1.as_mut_slice(), n).unwrap();
        let mut f2 = a.clone();
        let p2 = dgetrf(n, n, f2.as_mut_slice(), n, 7).unwrap();
        assert_eq!(p1, p2, "pivot sequences differ");
        assert!(f1.max_abs_diff(&f2) < 1e-10);
    }

    #[test]
    fn singular_matrix_detected() {
        let mut a = vec![0.0; 9]; // all zeros: singular
        assert!(dgetf2(3, 3, &mut a, 3).is_err());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // [[0, 1], [1, 0]] requires a swap.
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let ipiv = dgetf2(2, 2, &mut a, 2).unwrap();
        assert_eq!(ipiv[0], 1);
        let mut b = vec![2.0, 3.0];
        dgetrs(2, &a, 2, &ipiv, &mut b);
        // A x = b with A = [[0,1],[1,0]] => x = [3, 2].
        assert_eq!(b, vec![3.0, 2.0]);
    }
}

/// Apply `Qᵀ` (from a [`dgeqrf`]-factored `a`) to a vector `b` in place
/// (LAPACK `dormqr` with side=Left, trans=T, single RHS).
pub fn dormqr_left_trans(m: usize, k: usize, a: &[f64], lda: usize, tau: &[f64], b: &mut [f64]) {
    assert!(b.len() >= m);
    for j in 0..k.min(tau.len()) {
        if tau[j] == 0.0 {
            continue;
        }
        // v = [zeros(j); 1; A[j+1.., j]]
        let mut w = b[j];
        for i in j + 1..m {
            w += a[j * lda + i] * b[i];
        }
        let t = -tau[j] * w;
        b[j] += t;
        for i in j + 1..m {
            b[i] += t * a[j * lda + i];
        }
    }
}

/// Solve the least-squares problem `min ‖A x − b‖₂` for full-rank `A`
/// (`m × n`, `m ≥ n`) via Householder QR (LAPACK `dgels` with trans=N,
/// single RHS). Returns `x` (length `n`); `b` is consumed as workspace.
pub fn dgels(m: usize, n: usize, a: &Matrix, b: &[f64], nb: usize) -> Vec<f64> {
    assert_eq!(a.rows(), m);
    assert_eq!(a.cols(), n);
    assert!(m >= n, "dgels requires m >= n");
    assert_eq!(b.len(), m);
    let mut f = a.clone();
    let tau = dgeqrf(m, n, f.as_mut_slice(), m, nb);
    let mut y = b.to_vec();
    dormqr_left_trans(m, n, f.as_slice(), m, &tau, &mut y);
    // Back-substitute R x = y[0..n].
    let mut x = y[..n].to_vec();
    for i in (0..n).rev() {
        let mut s = x[i];
        for j in i + 1..n {
            s -= f.get(i, j) * x[j];
        }
        x[i] = s / f.get(i, i);
    }
    x
}

#[cfg(test)]
mod ls_tests {
    use super::*;
    use dacc_sim::rng::SimRng;

    #[test]
    fn dgels_recovers_exact_solution_for_square_system() {
        let n = 12;
        let mut rng = SimRng::new(21);
        let a0 = Matrix::random(n, n, &mut rng);
        let a = Matrix::from_fn(n, n, |i, j| {
            a0.get(i, j) + if i == j { n as f64 } else { 0.0 }
        });
        let x_true: Vec<f64> = (0..n).map(|i| 0.5 * i as f64 - 2.0).collect();
        let mut b = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += a.get(i, j) * x_true[j];
            }
        }
        let x = dgels(n, n, &a, &b, 4);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10, "{xi} vs {ti}");
        }
    }

    #[test]
    fn dgels_minimizes_residual_for_overdetermined_system() {
        // Fit a line y = c0 + c1 t to noisy points; the normal equations
        // give the reference answer.
        let m = 40;
        let mut rng = SimRng::new(22);
        let ts: Vec<f64> = (0..m).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = ts
            .iter()
            .map(|t| 1.5 + 0.75 * t + 0.01 * rng.normal())
            .collect();
        let a = Matrix::from_fn(m, 2, |i, j| if j == 0 { 1.0 } else { ts[i] });
        let x = dgels(m, 2, &a, &ys, 2);
        // Normal equations: (AᵀA) x = Aᵀ y, solved directly for 2x2.
        let (mut s00, mut s01, mut s11, mut r0, mut r1) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for i in 0..m {
            s00 += 1.0;
            s01 += ts[i];
            s11 += ts[i] * ts[i];
            r0 += ys[i];
            r1 += ts[i] * ys[i];
        }
        let det = s00 * s11 - s01 * s01;
        let c0 = (s11 * r0 - s01 * r1) / det;
        let c1 = (s00 * r1 - s01 * r0) / det;
        assert!((x[0] - c0).abs() < 1e-9, "{} vs {c0}", x[0]);
        assert!((x[1] - c1).abs() < 1e-9, "{} vs {c1}", x[1]);
        // Sanity: close to the generating coefficients.
        assert!((x[0] - 1.5).abs() < 0.05 && (x[1] - 0.75).abs() < 0.02);
    }

    #[test]
    fn dormqr_matches_explicit_q() {
        let (m, n) = (10, 6);
        let a = Matrix::random(m, n, &mut SimRng::new(23));
        let mut f = a.clone();
        let tau = dgeqrf(m, n, f.as_mut_slice(), m, 3);
        let q = build_q(m, &f, &tau);
        let b: Vec<f64> = (0..m).map(|i| i as f64 - 4.0).collect();
        // Explicit Qᵀ b.
        let mut expect = vec![0.0; m];
        for i in 0..m {
            for r in 0..m {
                expect[i] += q.get(r, i) * b[r];
            }
        }
        let mut got = b.clone();
        dormqr_left_trans(m, n, f.as_slice(), m, &tau, &mut got);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-11, "{g} vs {e}");
        }
    }
}
