//! A CPU BLAS subset (column-major, explicit leading dimensions).
//!
//! These routines do the real arithmetic for CPU panel factorizations and
//! back the functional bodies of the GPU kernels. They follow the reference
//! BLAS semantics closely enough that the LAPACK-style routines in
//! [`crate::lapack`] read like their Fortran counterparts.

/// Operation applied to a matrix operand.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Trans {
    /// Use the matrix as stored.
    No,
    /// Use the transpose.
    Yes,
}

/// Which side a triangular matrix multiplies from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Side {
    /// `op(A) · X`.
    Left,
    /// `X · op(A)`.
    Right,
}

/// Which triangle of a triangular matrix is stored.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UpLo {
    /// Lower triangle.
    Lower,
    /// Upper triangle.
    Upper,
}

/// Whether a triangular matrix has an implicit unit diagonal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Diag {
    /// Diagonal as stored.
    NonUnit,
    /// Implicit ones on the diagonal.
    Unit,
}

#[inline]
fn at(a: &[f64], lda: usize, i: usize, j: usize) -> f64 {
    a[j * lda + i]
}

#[inline]
fn at_mut(a: &mut [f64], lda: usize, i: usize, j: usize) -> &mut f64 {
    &mut a[j * lda + i]
}

/// `C ← α·op(A)·op(B) + β·C` where `C` is `m × n` and the contracted
/// dimension is `k`.
#[allow(clippy::too_many_arguments)]
pub fn dgemm(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    // Scale C by beta first.
    for j in 0..n {
        for i in 0..m {
            let cij = at_mut(c, ldc, i, j);
            *cij *= beta;
        }
    }
    if alpha == 0.0 {
        return;
    }
    let ga = |i: usize, l: usize| match transa {
        Trans::No => at(a, lda, i, l),
        Trans::Yes => at(a, lda, l, i),
    };
    let gb = |l: usize, j: usize| match transb {
        Trans::No => at(b, ldb, l, j),
        Trans::Yes => at(b, ldb, j, l),
    };
    for j in 0..n {
        for l in 0..k {
            let blj = gb(l, j);
            if blj == 0.0 {
                continue;
            }
            let s = alpha * blj;
            for i in 0..m {
                *at_mut(c, ldc, i, j) += s * ga(i, l);
            }
        }
    }
}

/// `C ← α·A·Aᵀ + β·C` (or `AᵀA` when `trans`), updating only the `uplo`
/// triangle of the `n × n` matrix `C`; `k` is the contracted dimension.
#[allow(clippy::too_many_arguments)]
pub fn dsyrk(
    uplo: UpLo,
    trans: Trans,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    let ga = |i: usize, l: usize| match trans {
        Trans::No => at(a, lda, i, l),
        Trans::Yes => at(a, lda, l, i),
    };
    for j in 0..n {
        let (lo, hi) = match uplo {
            UpLo::Lower => (j, n),
            UpLo::Upper => (0, j + 1),
        };
        for i in lo..hi {
            let mut s = 0.0;
            for l in 0..k {
                s += ga(i, l) * ga(j, l);
            }
            let cij = at_mut(c, ldc, i, j);
            *cij = alpha * s + beta * *cij;
        }
    }
}

/// Triangular solve with multiple right-hand sides:
/// `op(A)·X = α·B` (left) or `X·op(A) = α·B` (right); `B` (`m × n`) is
/// overwritten with `X`. `A` is triangular per `uplo`/`diag`.
#[allow(clippy::too_many_arguments)]
pub fn dtrsm(
    side: Side,
    uplo: UpLo,
    trans: Trans,
    diag: Diag,
    m: usize,
    n: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &mut [f64],
    ldb: usize,
) {
    for j in 0..n {
        for i in 0..m {
            *at_mut(b, ldb, i, j) *= alpha;
        }
    }
    let dim = match side {
        Side::Left => m,
        Side::Right => n,
    };
    let diag_at = |i: usize| match diag {
        Diag::NonUnit => at(a, lda, i, i),
        Diag::Unit => 1.0,
    };
    // Effective triangle after transposition.
    let lower = matches!(
        (uplo, trans),
        (UpLo::Lower, Trans::No) | (UpLo::Upper, Trans::Yes)
    );
    let ga = |i: usize, l: usize| match trans {
        Trans::No => at(a, lda, i, l),
        Trans::Yes => at(a, lda, l, i),
    };
    match side {
        Side::Left => {
            // Solve op(A) X = B column by column.
            for j in 0..n {
                if lower {
                    for i in 0..dim {
                        let mut s = at(b, ldb, i, j);
                        for l in 0..i {
                            s -= ga(i, l) * at(b, ldb, l, j);
                        }
                        *at_mut(b, ldb, i, j) = s / diag_at(i);
                    }
                } else {
                    for i in (0..dim).rev() {
                        let mut s = at(b, ldb, i, j);
                        for l in i + 1..dim {
                            s -= ga(i, l) * at(b, ldb, l, j);
                        }
                        *at_mut(b, ldb, i, j) = s / diag_at(i);
                    }
                }
            }
        }
        Side::Right => {
            // Solve X op(A) = B row by row: X[:, j] depends on previous
            // (lower: later) columns of X.
            if lower {
                // X A = B with A lower: column j of X uses columns > j.
                for j in (0..dim).rev() {
                    for i in 0..m {
                        let mut s = at(b, ldb, i, j);
                        for l in j + 1..dim {
                            s -= at(b, ldb, i, l) * ga(l, j);
                        }
                        *at_mut(b, ldb, i, j) = s / diag_at(j);
                    }
                }
            } else {
                for j in 0..dim {
                    for i in 0..m {
                        let mut s = at(b, ldb, i, j);
                        for l in 0..j {
                            s -= at(b, ldb, i, l) * ga(l, j);
                        }
                        *at_mut(b, ldb, i, j) = s / diag_at(j);
                    }
                }
            }
        }
    }
}

/// `y ← α·x + y`.
pub fn daxpy(n: usize, alpha: f64, x: &[f64], incx: usize, y: &mut [f64], incy: usize) {
    for i in 0..n {
        y[i * incy] += alpha * x[i * incx];
    }
}

/// `x ← α·x`.
pub fn dscal(n: usize, alpha: f64, x: &mut [f64], incx: usize) {
    for i in 0..n {
        x[i * incx] *= alpha;
    }
}

/// Euclidean norm of a strided vector.
pub fn dnrm2(n: usize, x: &[f64], incx: usize) -> f64 {
    (0..n)
        .map(|i| x[i * incx] * x[i * incx])
        .sum::<f64>()
        .sqrt()
}

/// Dot product of two strided vectors.
pub fn ddot(n: usize, x: &[f64], incx: usize, y: &[f64], incy: usize) -> f64 {
    (0..n).map(|i| x[i * incx] * y[i * incy]).sum()
}

/// Rank-1 update `A ← A + α·x·yᵀ`.
#[allow(clippy::too_many_arguments)]
pub fn dger(
    m: usize,
    n: usize,
    alpha: f64,
    x: &[f64],
    incx: usize,
    y: &[f64],
    incy: usize,
    a: &mut [f64],
    lda: usize,
) {
    for j in 0..n {
        let ayj = alpha * y[j * incy];
        if ayj == 0.0 {
            continue;
        }
        for i in 0..m {
            *at_mut(a, lda, i, j) += x[i * incx] * ayj;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use dacc_sim::rng::SimRng;

    fn random(m: usize, n: usize, seed: u64) -> Matrix {
        Matrix::random(m, n, &mut SimRng::new(seed))
    }

    #[test]
    fn dgemm_matches_naive_all_trans() {
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::No),
            (Trans::Yes, Trans::Yes),
        ] {
            let (m, n, k) = (5, 4, 3);
            let a = match ta {
                Trans::No => random(m, k, 1),
                Trans::Yes => random(k, m, 1),
            };
            let b = match tb {
                Trans::No => random(k, n, 2),
                Trans::Yes => random(n, k, 2),
            };
            let mut c = random(m, n, 3);
            let c0 = c.clone();
            let (alpha, beta) = (1.5, -0.5);
            dgemm(
                ta,
                tb,
                m,
                n,
                k,
                alpha,
                a.as_slice(),
                a.lda(),
                b.as_slice(),
                b.lda(),
                beta,
                c.as_mut_slice(),
                m,
            );
            let aa = match ta {
                Trans::No => a.clone(),
                Trans::Yes => a.transpose(),
            };
            let bb = match tb {
                Trans::No => b.clone(),
                Trans::Yes => b.transpose(),
            };
            let expect = Matrix::from_fn(m, n, |i, j| {
                alpha * aa.mul(&bb).get(i, j) + beta * c0.get(i, j)
            });
            assert!(
                c.max_abs_diff(&expect) < 1e-12,
                "dgemm mismatch for ({ta:?}, {tb:?})"
            );
        }
    }

    #[test]
    fn dgemm_respects_lda_submatrix() {
        // Operate on a 2x2 block inside a 4x4 matrix.
        let mut big = Matrix::from_fn(4, 4, |i, j| (10 * i + j) as f64);
        let a = [1.0, 0.0, 0.0, 1.0]; // 2x2 identity, lda=2
        let b = [1.0, 2.0, 3.0, 4.0]; // 2x2, lda=2
                                      // C block at (1,1) inside big (lda=4): offset = 1*4+1
        let lda_big = 4;
        let offset = lda_big + 1;
        let before = big.clone();
        dgemm(
            Trans::No,
            Trans::No,
            2,
            2,
            2,
            1.0,
            &a,
            2,
            &b,
            2,
            0.0,
            &mut big.as_mut_slice()[offset..],
            lda_big,
        );
        // The 2x2 block is overwritten with B; everything else untouched.
        assert_eq!(big.get(1, 1), 1.0);
        assert_eq!(big.get(2, 1), 2.0);
        assert_eq!(big.get(1, 2), 3.0);
        assert_eq!(big.get(2, 2), 4.0);
        assert_eq!(big.get(0, 0), before.get(0, 0));
        assert_eq!(big.get(3, 3), before.get(3, 3));
    }

    #[test]
    fn dsyrk_matches_dgemm_on_triangle() {
        let n = 5;
        let k = 3;
        let a = random(n, k, 4);
        let mut c_syrk = random(n, n, 5);
        // Symmetrize the testing target.
        let mut c_full = c_syrk.clone();
        dsyrk(
            UpLo::Lower,
            Trans::No,
            n,
            k,
            2.0,
            a.as_slice(),
            n,
            0.5,
            c_syrk.as_mut_slice(),
            n,
        );
        dgemm(
            Trans::No,
            Trans::Yes,
            n,
            n,
            k,
            2.0,
            a.as_slice(),
            n,
            a.as_slice(),
            n,
            0.5,
            c_full.as_mut_slice(),
            n,
        );
        for j in 0..n {
            for i in j..n {
                assert!((c_syrk.get(i, j) - c_full.get(i, j)).abs() < 1e-12);
            }
            // Upper triangle untouched by dsyrk — verified by comparing
            // against the scaled-but-not-updated value being different from
            // dgemm's (when i < j the dgemm result generally differs).
        }
    }

    #[test]
    fn dtrsm_left_lower_solves() {
        let n = 4;
        let nrhs = 3;
        // Well-conditioned lower-triangular A.
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                2.0 + i as f64
            } else if i > j {
                0.3
            } else {
                0.0
            }
        });
        let x_true = random(n, nrhs, 6);
        let b = a.mul(&x_true);
        let mut x = b.clone();
        dtrsm(
            Side::Left,
            UpLo::Lower,
            Trans::No,
            Diag::NonUnit,
            n,
            nrhs,
            1.0,
            a.as_slice(),
            n,
            x.as_mut_slice(),
            n,
        );
        assert!(x.max_abs_diff(&x_true) < 1e-12);
    }

    #[test]
    fn dtrsm_right_lower_trans_solves() {
        // The Cholesky panel case: X · Lᵀ = B.
        let n = 4;
        let m = 6;
        let l = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                3.0
            } else if i > j {
                0.5
            } else {
                0.0
            }
        });
        let x_true = random(m, n, 7);
        let b = x_true.mul(&l.transpose());
        let mut x = b.clone();
        dtrsm(
            Side::Right,
            UpLo::Lower,
            Trans::Yes,
            Diag::NonUnit,
            m,
            n,
            1.0,
            l.as_slice(),
            n,
            x.as_mut_slice(),
            m,
        );
        assert!(x.max_abs_diff(&x_true) < 1e-12);
    }

    #[test]
    fn dtrsm_unit_diag_ignores_stored_diagonal() {
        let n = 3;
        let mut a = Matrix::identity(n);
        a.set(0, 0, 99.0); // must be ignored with Diag::Unit
        a.set(1, 0, 0.5);
        let b = random(n, 2, 8);
        let mut x = b.clone();
        dtrsm(
            Side::Left,
            UpLo::Lower,
            Trans::No,
            Diag::Unit,
            n,
            2,
            1.0,
            a.as_slice(),
            n,
            x.as_mut_slice(),
            n,
        );
        // Row 0 unchanged (unit diag), row 1 = b1 - 0.5*b0.
        for j in 0..2 {
            assert!((x.get(0, j) - b.get(0, j)).abs() < 1e-14);
            assert!((x.get(1, j) - (b.get(1, j) - 0.5 * b.get(0, j))).abs() < 1e-14);
        }
    }

    #[test]
    fn vector_routines() {
        let x = vec![3.0, 4.0];
        assert_eq!(dnrm2(2, &x, 1), 5.0);
        assert_eq!(ddot(2, &x, 1, &x, 1), 25.0);
        let mut y = vec![1.0, 1.0];
        daxpy(2, 2.0, &x, 1, &mut y, 1);
        assert_eq!(y, vec![7.0, 9.0]);
        let mut z = vec![2.0, 4.0];
        dscal(2, 0.5, &mut z, 1);
        assert_eq!(z, vec![1.0, 2.0]);
    }

    #[test]
    fn dger_rank1() {
        let mut a = Matrix::zeros(2, 3);
        let x = vec![1.0, 2.0];
        let y = vec![3.0, 4.0, 5.0];
        dger(2, 3, 2.0, &x, 1, &y, 1, a.as_mut_slice(), 2);
        assert_eq!(a.get(1, 2), 2.0 * 2.0 * 5.0);
        assert_eq!(a.get(0, 0), 2.0 * 1.0 * 3.0);
    }

    #[test]
    fn strided_vector_ops() {
        // Row access in a column-major matrix: stride = lda.
        let m = Matrix::from_fn(3, 3, |i, j| (i + 10 * j) as f64);
        // Row 1: elements (1,0),(1,1),(1,2) = 1, 11, 21 with stride 3.
        let row_start = 1;
        let row: Vec<f64> = m.as_slice()[row_start..].to_vec();
        assert_eq!(ddot(3, &row, 3, &row, 3), 1.0 + 121.0 + 441.0);
    }
}
