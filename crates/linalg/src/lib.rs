//! `dacc-linalg` — dense linear algebra for the dynamic accelerator cluster.
//!
//! A CPU BLAS/LAPACK subset (real arithmetic), GPU kernels registered on the
//! virtual device, and MAGMA-style hybrid CPU+GPU factorizations (QR and
//! Cholesky, single- and multi-GPU) driven through the middleware's
//! computation API — the workloads of the paper's Figures 9 and 10.

#![warn(missing_docs)]
// Numerical kernels index several arrays with one loop variable; iterator
// adaptors would obscure the LAPACK-style math.
#![allow(clippy::needless_range_loop)]

pub mod blas;
pub mod gpu;
pub mod hybrid;
pub mod lapack;
pub mod matrix;
