//! Structured event tracing for simulation components.
//!
//! A [`Tracer`] is a cheap, clonable handle onto a bounded ring of
//! `(time, category, label)` records. Components record what they did
//! (requests served, transfers completed, allocations granted); tests and
//! debugging sessions query or dump the ring. A disabled tracer records
//! nothing and costs one branch.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::executor::SimHandle;
use crate::time::SimTime;

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub time: SimTime,
    /// Component / event class (e.g. `"daemon.request"`).
    pub category: &'static str,
    /// Free-form detail.
    pub label: String,
}

struct TraceInner {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

/// A bounded, shared event recorder.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<Mutex<TraceInner>>>,
}

impl Tracer {
    /// An enabled tracer keeping the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Tracer {
            inner: Some(Arc::new(Mutex::new(TraceInner {
                ring: VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                dropped: 0,
            }))),
        }
    }

    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// True if recording.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record an event at the handle's current time. The label closure is
    /// only evaluated when the tracer is enabled.
    pub fn record(
        &self,
        handle: &SimHandle,
        category: &'static str,
        label: impl FnOnce() -> String,
    ) {
        if let Some(inner) = &self.inner {
            let mut t = inner.lock();
            if t.ring.len() == t.capacity {
                t.ring.pop_front();
                t.dropped += 1;
            }
            t.ring.push_back(TraceEvent {
                time: handle.now(),
                category,
                label: label(),
            });
        }
    }

    /// Snapshot of all retained events in time order.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => inner.lock().ring.iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Retained events of one category.
    pub fn events_in(&self, category: &str) -> Vec<TraceEvent> {
        self.events()
            .into_iter()
            .filter(|e| e.category == category)
            .collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.lock().ring.len())
    }

    /// True if nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.lock().dropped)
    }

    /// Clear the ring (keeps the drop counter).
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            inner.lock().ring.clear();
        }
    }

    /// Render as `time  category  label` lines (debugging aid).
    pub fn dump(&self) -> String {
        self.events()
            .iter()
            .map(|e| {
                format!(
                    "{:>14}  {:<20}  {}",
                    e.time.to_string(),
                    e.category,
                    e.label
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;

    #[test]
    fn records_in_time_order() {
        let mut sim = Sim::new();
        let tracer = Tracer::new(16);
        let h = sim.handle();
        let t2 = tracer.clone();
        sim.spawn("t", async move {
            t2.record(&h, "a", || "first".into());
            h.delay(SimDuration::from_micros(5)).await;
            t2.record(&h, "b", || "second".into());
        });
        sim.run();
        let ev = tracer.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].label, "first");
        assert_eq!(ev[1].category, "b");
        assert_eq!(ev[1].time.as_nanos(), 5_000);
        assert!(tracer.dump().contains("second"));
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut sim = Sim::new();
        let tracer = Tracer::new(3);
        let h = sim.handle();
        let t2 = tracer.clone();
        sim.spawn("t", async move {
            for i in 0..10 {
                t2.record(&h, "x", || format!("e{i}"));
            }
        });
        sim.run();
        let ev = tracer.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].label, "e7");
        assert_eq!(ev[2].label, "e9");
        assert_eq!(tracer.dropped(), 7);
    }

    #[test]
    fn disabled_tracer_records_nothing_and_skips_label() {
        let mut sim = Sim::new();
        let tracer = Tracer::disabled();
        let h = sim.handle();
        let t2 = tracer.clone();
        sim.spawn("t", async move {
            t2.record(&h, "x", || panic!("label must not be evaluated"));
        });
        sim.run();
        assert!(!tracer.is_enabled());
        assert!(tracer.is_empty());
    }

    #[test]
    fn category_filter() {
        let mut sim = Sim::new();
        let tracer = Tracer::new(16);
        let h = sim.handle();
        let t2 = tracer.clone();
        sim.spawn("t", async move {
            t2.record(&h, "a", || "1".into());
            t2.record(&h, "b", || "2".into());
            t2.record(&h, "a", || "3".into());
        });
        sim.run();
        assert_eq!(tracer.events_in("a").len(), 2);
        assert_eq!(tracer.events_in("b").len(), 1);
        tracer.clear();
        assert!(tracer.is_empty());
    }
}
