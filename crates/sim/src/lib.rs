//! `dacc-sim` — deterministic discrete-event simulation core.
//!
//! This crate provides the substrate on which the dynamic accelerator-cluster
//! reproduction runs: a virtual clock, a single-threaded deterministic async
//! executor, zero-latency channels for task synchronization, FCFS resources
//! (links, servers) for modelling contention, seeded RNG streams, and small
//! measurement helpers.
//!
//! # Example
//!
//! ```
//! use dacc_sim::prelude::*;
//!
//! let mut sim = Sim::new();
//! let h = sim.handle();
//! let (tx, rx) = channel::<u32>();
//! sim.spawn("producer", {
//!     let h = h.clone();
//!     async move {
//!         h.delay(SimDuration::from_micros(5)).await;
//!         tx.send(42).unwrap();
//!     }
//! });
//! let result = sim.spawn("consumer", async move { rx.recv().await.unwrap() });
//! sim.run();
//! assert_eq!(result.try_take(), Some(42));
//! ```

#![warn(missing_docs)]
// The engine is strictly single-threaded; `Arc` is used for `std::task::Wake`
// compatibility, not cross-thread sharing, so non-Send contents are fine.
#![allow(clippy::arc_with_non_send_sync)]

pub mod channel;
pub mod executor;
pub mod fault;
pub mod futures;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod time;
pub mod trace;

/// Common imports for simulation code.
pub mod prelude {
    pub use crate::channel::{channel, oneshot::oneshot, Receiver, RecvError, SendError, Sender};
    pub use crate::executor::{yield_now, JoinHandle, RunOutcome, Sim, SimHandle};
    pub use crate::fault::{FaultHook, LinkFault, NoFaults, ProcessFault};
    pub use crate::futures::{join2, join_all};
    pub use crate::resource::{Link, LinkParams, Resource, ResourceGuard, Server};
    pub use crate::rng::SimRng;
    pub use crate::stats::{Stopwatch, Summary, TimeSeries};
    pub use crate::sync::{Barrier, EventFlag};
    pub use crate::time::{observed_bandwidth, Bandwidth, SimDuration, SimTime};
    pub use crate::trace::{TraceEvent, Tracer};
}

pub use prelude::*;
