//! Virtual time for the discrete-event engine.
//!
//! All simulation timestamps are nanoseconds since simulation start, stored
//! in a `u64`. That gives ~584 years of range, far beyond any experiment,
//! while keeping arithmetic exact and ordering total. Durations derived from
//! bandwidth models are computed in `f64` seconds and rounded to the nearest
//! nanosecond once, per event, so rounding error never accumulates across
//! events.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point in virtual time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as a sentinel for "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Microseconds since simulation start as a float — the Chrome
    /// trace-event timestamp unit, so exporters can map virtual time onto
    /// trace timelines without unit juggling.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Duration elapsed since `earlier`. Panics if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier is later than self"),
        )
    }

    /// Saturating difference: zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from float seconds, rounding to the nearest nanosecond.
    ///
    /// Panics on negative or non-finite input: a negative service time is
    /// always a modelling bug and must not be silently clamped.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "SimDuration::from_secs_f64: invalid duration {s}"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Float seconds (for reporting and rate computations).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Float microseconds (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer-scaled duration (e.g. `block_time * nblocks`).
    pub fn saturating_mul(self, n: u64) -> Self {
        SimDuration(self.0.saturating_mul(n))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: simulation ran past u64 nanoseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow: subtracted past simulation start"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// A data rate in bytes per second, used by link and DMA cost models.
///
/// Kept as a newtype so MiB/s (the unit the paper reports) and bytes/s are
/// never confused.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// From bytes per second.
    pub fn from_bytes_per_sec(b: f64) -> Self {
        assert!(b > 0.0 && b.is_finite(), "bandwidth must be positive");
        Bandwidth(b)
    }

    /// From MiB/s — the unit used throughout the paper's figures.
    pub fn from_mib_per_sec(mib: f64) -> Self {
        Self::from_bytes_per_sec(mib * 1024.0 * 1024.0)
    }

    /// From GiB/s.
    pub fn from_gib_per_sec(gib: f64) -> Self {
        Self::from_bytes_per_sec(gib * 1024.0 * 1024.0 * 1024.0)
    }

    /// Bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }

    /// MiB per second.
    pub fn mib_per_sec(self) -> f64 {
        self.0 / (1024.0 * 1024.0)
    }

    /// Time to move `bytes` at this rate (no latency/overhead terms).
    pub fn transfer_time(self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.0)
    }
}

/// Convenience: observed bandwidth of moving `bytes` in `elapsed`.
pub fn observed_bandwidth(bytes: u64, elapsed: SimDuration) -> Bandwidth {
    assert!(!elapsed.is_zero(), "observed_bandwidth: zero elapsed time");
    Bandwidth::from_bytes_per_sec(bytes as f64 / elapsed.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_micros(5);
        assert_eq!(t.as_nanos(), 5_000);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_micros(5));
        assert_eq!((t - SimDuration::from_micros(5)), SimTime::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn duration_f64_roundtrip_is_exact_at_ns() {
        let d = SimDuration::from_nanos(123_456_789);
        assert_eq!(SimDuration::from_secs_f64(d.as_secs_f64()), d);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn bandwidth_transfer_time() {
        let bw = Bandwidth::from_mib_per_sec(1024.0); // 1 GiB/s
        let t = bw.transfer_time(1024 * 1024 * 1024);
        assert_eq!(t, SimDuration::from_secs(1));
    }

    #[test]
    fn observed_bandwidth_inverts_transfer_time() {
        let bw = Bandwidth::from_mib_per_sec(2660.0);
        let bytes = 64 * 1024 * 1024;
        let t = bw.transfer_time(bytes);
        let back = observed_bandwidth(bytes, t);
        assert!((back.mib_per_sec() - 2660.0).abs() < 0.01);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(10);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_nanos(5));
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }
}
