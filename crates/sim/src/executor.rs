//! A deterministic, single-threaded async executor driven by a virtual clock.
//!
//! Simulation "processes" (MPI ranks, accelerator daemons, the resource
//! manager) are plain `async fn`s. Blocking operations — timers, channel
//! receives, resource acquisition — are hand-written futures that park the
//! task and register a wake-up, either immediately (ready queue) or at a
//! future virtual time (the event calendar).
//!
//! Determinism: the run loop drains the ready queue in FIFO order, then pops
//! the calendar entry with the smallest `(time, sequence)` key. Sequence
//! numbers break ties in insertion order, so two runs of the same program
//! with the same seeds produce identical event orderings.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use parking_lot::Mutex;

use crate::time::{SimDuration, SimTime};

/// Identifier of a spawned task, unique within one [`Sim`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TaskId(u64);

type BoxedFuture = Pin<Box<dyn Future<Output = ()>>>;

/// A calendar entry: wake `waker` at `time`.
struct CalEntry {
    time: SimTime,
    seq: u64,
    waker: Waker,
}

impl PartialEq for CalEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for CalEntry {}
impl PartialOrd for CalEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CalEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The ready queue, split out from [`SimCore`] so wakers (which must be
/// `Send + Sync` by `std::task::Wake`'s signature) never reference the
/// non-`Send` task futures. The engine itself is strictly single-threaded.
struct ReadyQueue {
    queue: Mutex<VecDeque<TaskId>>,
}

impl ReadyQueue {
    fn push(&self, id: TaskId) {
        let mut q = self.queue.lock();
        // A task woken several times before being polled runs once.
        if !q.contains(&id) {
            q.push_back(id);
        }
    }

    fn pop(&self) -> Option<TaskId> {
        self.queue.lock().pop_front()
    }
}

/// Shared mutable state of the simulation.
///
/// The engine is strictly single-threaded; the mutexes exist only to provide
/// safe interior mutability behind `Arc` (they are never contended).
pub(crate) struct SimCore {
    now: Mutex<SimTime>,
    seq: AtomicU64,
    calendar: Mutex<BinaryHeap<Reverse<CalEntry>>>,
    ready: Arc<ReadyQueue>,
    /// Tasks not currently being polled. A task being polled is temporarily
    /// removed so a re-entrant wake cannot alias it.
    tasks: Mutex<HashMap<TaskId, BoxedFuture>>,
    /// Tasks spawned while another task is being polled; drained by the loop.
    newly_spawned: Mutex<Vec<(TaskId, BoxedFuture, &'static str)>>,
    names: Mutex<HashMap<TaskId, &'static str>>,
    next_task: AtomicU64,
    events_processed: AtomicU64,
}

impl SimCore {
    fn new() -> Self {
        SimCore {
            now: Mutex::new(SimTime::ZERO),
            seq: AtomicU64::new(0),
            calendar: Mutex::new(BinaryHeap::new()),
            ready: Arc::new(ReadyQueue {
                queue: Mutex::new(VecDeque::new()),
            }),
            tasks: Mutex::new(HashMap::new()),
            newly_spawned: Mutex::new(Vec::new()),
            names: Mutex::new(HashMap::new()),
            next_task: AtomicU64::new(0),
            events_processed: AtomicU64::new(0),
        }
    }

    pub(crate) fn now(&self) -> SimTime {
        *self.now.lock()
    }

    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Register `waker` to fire at absolute time `at`.
    pub(crate) fn schedule_wake(&self, at: SimTime, waker: Waker) {
        debug_assert!(at >= self.now(), "cannot schedule a wake in the past");
        let seq = self.next_seq();
        self.calendar.lock().push(Reverse(CalEntry {
            time: at,
            seq,
            waker,
        }));
    }

    fn enqueue_ready(&self, id: TaskId) {
        self.ready.push(id);
    }
}

struct TaskWaker {
    id: TaskId,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

/// Outcome of [`Sim::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Virtual time when the run loop stopped.
    pub time: SimTime,
    /// Tasks still alive but blocked with no event that could ever wake them
    /// (e.g. daemons parked on a channel whose senders are still live).
    /// Zero means every task ran to completion.
    pub pending_tasks: usize,
    /// Total calendar + ready events processed (for engine benchmarks).
    pub events: u64,
}

/// The discrete-event simulation: owns the run loop.
pub struct Sim {
    core: Arc<SimCore>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Create an empty simulation at virtual time zero.
    pub fn new() -> Self {
        Sim {
            core: Arc::new(SimCore::new()),
        }
    }

    /// A cheaply clonable handle for spawning tasks and creating timers.
    pub fn handle(&self) -> SimHandle {
        SimHandle {
            core: Arc::clone(&self.core),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now()
    }

    /// Spawn a root task. See [`SimHandle::spawn`].
    pub fn spawn<F>(&self, name: &'static str, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        self.handle().spawn(name, fut)
    }

    /// Run until no future event exists or `deadline` is reached.
    ///
    /// Returns the stop time and the number of still-blocked tasks. Tasks
    /// blocked forever (e.g. server loops awaiting closed-over channels that
    /// are never written again) are reported, not treated as errors: it is up
    /// to the caller to decide whether that is expected.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        loop {
            // Adopt tasks spawned since the last iteration.
            self.adopt_spawned();

            // Drain the ready queue at the current time, FIFO.
            loop {
                let next = self.core.ready.pop();
                match next {
                    Some(id) => {
                        self.poll_task(id);
                        self.adopt_spawned();
                        self.core.events_processed.fetch_add(1, Ordering::Relaxed);
                    }
                    None => break,
                }
            }

            // Advance to the next calendar event.
            let entry = {
                let mut cal = self.core.calendar.lock();
                match cal.peek() {
                    Some(Reverse(e)) if e.time <= deadline => cal.pop().map(|Reverse(e)| e),
                    _ => None,
                }
            };
            match entry {
                Some(e) => {
                    {
                        let mut now = self.core.now.lock();
                        debug_assert!(e.time >= *now, "calendar went backwards");
                        *now = e.time;
                    }
                    self.core.events_processed.fetch_add(1, Ordering::Relaxed);
                    e.waker.wake();
                }
                None => break,
            }
        }
        // With no event left before the deadline, the clock still advances
        // to it: "run for one second" means one second elapses.
        if deadline != SimTime::MAX {
            let mut now = self.core.now.lock();
            if *now < deadline {
                *now = deadline;
            }
        }
        RunOutcome {
            time: self.core.now(),
            pending_tasks: self.core.tasks.lock().len(),
            events: self.core.events_processed.load(Ordering::Relaxed),
        }
    }

    /// Run until the event calendar and ready queue are exhausted.
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Names of tasks that are still blocked (diagnostics for stalls).
    pub fn pending_task_names(&self) -> Vec<&'static str> {
        let tasks = self.core.tasks.lock();
        let names = self.core.names.lock();
        let mut v: Vec<&'static str> = tasks
            .keys()
            .map(|id| names.get(id).copied().unwrap_or("<unnamed>"))
            .collect();
        v.sort_unstable();
        v
    }

    fn adopt_spawned(&self) {
        let spawned: Vec<_> = self.core.newly_spawned.lock().drain(..).collect();
        for (id, fut, name) in spawned {
            self.core.tasks.lock().insert(id, fut);
            self.core.names.lock().insert(id, name);
            self.core.enqueue_ready(id);
        }
    }

    fn poll_task(&self, id: TaskId) {
        // Remove while polling so a re-entrant wake cannot alias the future.
        let fut = self.core.tasks.lock().remove(&id);
        let Some(mut fut) = fut else {
            return; // already completed; spurious wake
        };
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            ready: Arc::clone(&self.core.ready),
        }));
        let mut cx = Context::from_waker(&waker);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                self.core.names.lock().remove(&id);
            }
            Poll::Pending => {
                self.core.tasks.lock().insert(id, fut);
            }
        }
    }
}

/// Cheap handle onto a [`Sim`]: spawn tasks, read the clock, create timers.
#[derive(Clone)]
pub struct SimHandle {
    core: Arc<SimCore>,
}

impl SimHandle {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now()
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed.load(Ordering::Relaxed)
    }

    /// Spawn a task. It starts running at the current virtual time, after
    /// already-ready tasks. The returned [`JoinHandle`] can be awaited for
    /// the task's output; dropping it detaches the task.
    pub fn spawn<F>(&self, name: &'static str, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let id = TaskId(self.core.next_task.fetch_add(1, Ordering::Relaxed));
        let state = Arc::new(Mutex::new(JoinState {
            result: None,
            waker: None,
        }));
        let state2 = Arc::clone(&state);
        let wrapped: BoxedFuture = Box::pin(async move {
            let out = fut.await;
            let mut s = state2.lock();
            s.result = Some(out);
            if let Some(w) = s.waker.take() {
                w.wake();
            }
        });
        self.core.newly_spawned.lock().push((id, wrapped, name));
        JoinHandle { state, id }
    }

    /// Sleep for `dur` of virtual time.
    pub fn delay(&self, dur: SimDuration) -> Timer {
        Timer {
            core: Arc::clone(&self.core),
            deadline: self.core.now() + dur,
            registered: false,
        }
    }

    /// Sleep until the absolute virtual time `at` (no-op if already past).
    pub fn delay_until(&self, at: SimTime) -> Timer {
        Timer {
            core: Arc::clone(&self.core),
            deadline: at,
            registered: false,
        }
    }
}

struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
}

/// Awaitable completion of a spawned task.
pub struct JoinHandle<T> {
    state: Arc<Mutex<JoinState<T>>>,
    id: TaskId,
}

impl<T> JoinHandle<T> {
    /// The spawned task's id (diagnostics).
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// True once the task has finished (its result not yet taken).
    pub fn is_finished(&self) -> bool {
        self.state.lock().result.is_some()
    }

    /// Take the result if the task has finished (useful after `Sim::run`
    /// from outside async context).
    pub fn try_take(&self) -> Option<T> {
        self.state.lock().result.take()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut s = self.state.lock();
        match s.result.take() {
            Some(v) => Poll::Ready(v),
            None => {
                s.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// Future returned by [`SimHandle::delay`].
pub struct Timer {
    core: Arc<SimCore>,
    deadline: SimTime,
    registered: bool,
}

impl Future for Timer {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.core.now() >= self.deadline {
            return Poll::Ready(());
        }
        if !self.registered {
            self.core.schedule_wake(self.deadline, cx.waker().clone());
            self.registered = true;
        }
        // If the task is polled again before the deadline (woken by something
        // else), re-register with the fresh waker: wakers are one-shot.
        else {
            self.core.schedule_wake(self.deadline, cx.waker().clone());
        }
        Poll::Pending
    }
}

/// Yield once: reschedules the task at the current time, behind the ready
/// queue. Useful to model "the CPU gets around to it" orderings in tests.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn empty_sim_finishes_at_zero() {
        let mut sim = Sim::new();
        let out = sim.run();
        assert_eq!(out.time, SimTime::ZERO);
        assert_eq!(out.pending_tasks, 0);
    }

    #[test]
    fn timer_advances_clock() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let done = Rc::new(RefCell::new(None));
        let done2 = Rc::clone(&done);
        sim.spawn("t", async move {
            h.delay(SimDuration::from_micros(10)).await;
            *done2.borrow_mut() = Some(h.now());
        });
        let out = sim.run();
        assert_eq!(
            *done.borrow(),
            Some(SimTime::ZERO + SimDuration::from_micros(10))
        );
        assert_eq!(out.pending_tasks, 0);
    }

    #[test]
    fn timers_fire_in_order_with_fifo_ties() {
        let mut sim = Sim::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for (i, us) in [(0u32, 30u64), (1, 10), (2, 20), (3, 10)] {
            let h = sim.handle();
            let order = Rc::clone(&order);
            sim.spawn("t", async move {
                h.delay(SimDuration::from_micros(us)).await;
                order.borrow_mut().push(i);
            });
        }
        sim.run();
        // 10us ties resolve in spawn order: 1 before 3.
        assert_eq!(*order.borrow(), vec![1, 3, 2, 0]);
    }

    #[test]
    fn join_handle_returns_value() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let jh = sim.spawn("child", async move {
            h.delay(SimDuration::from_micros(1)).await;
            42u32
        });
        let h2 = sim.handle();
        let result = Rc::new(RefCell::new(0));
        let result2 = Rc::clone(&result);
        sim.spawn("parent", async move {
            let _ = &h2;
            *result2.borrow_mut() = jh.await;
        });
        sim.run();
        assert_eq!(*result.borrow(), 42);
    }

    #[test]
    fn nested_spawn_runs() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let flag = Rc::new(RefCell::new(false));
        let flag2 = Rc::clone(&flag);
        sim.spawn("outer", async move {
            let inner_flag = Rc::clone(&flag2);
            let hh = h.clone();
            let jh = h.spawn("inner", async move {
                hh.delay(SimDuration::from_micros(5)).await;
                *inner_flag.borrow_mut() = true;
            });
            jh.await;
        });
        let out = sim.run();
        assert!(*flag.borrow());
        assert_eq!(out.time, SimTime::ZERO + SimDuration::from_micros(5));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Sim::new();
        let h = sim.handle();
        sim.spawn("late", async move {
            h.delay(SimDuration::from_secs(100)).await;
        });
        let out = sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(out.time, SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(out.pending_tasks, 1);
        assert_eq!(sim.pending_task_names(), vec!["late"]);
    }

    #[test]
    fn yield_now_interleaves() {
        let mut sim = Sim::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..2 {
            let order = Rc::clone(&order);
            sim.spawn("y", async move {
                order.borrow_mut().push((i, 0));
                yield_now().await;
                order.borrow_mut().push((i, 1));
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn determinism_same_program_same_event_count() {
        fn run_once() -> (u64, SimTime) {
            let mut sim = Sim::new();
            for i in 0..50u64 {
                let h = sim.handle();
                sim.spawn("t", async move {
                    h.delay(SimDuration::from_nanos(i * 7 % 13)).await;
                    h.delay(SimDuration::from_nanos(i)).await;
                });
            }
            let out = sim.run();
            (out.events, out.time)
        }
        assert_eq!(run_once(), run_once());
    }
}
