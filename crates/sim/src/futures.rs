//! Small future combinators for simulation code.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

/// Run a set of futures concurrently and collect their outputs in order.
///
/// Unlike spawning, the futures may borrow from the caller's scope — used
/// for per-device work inside the hybrid factorization drivers.
pub fn join_all<F: Future>(futures: Vec<F>) -> JoinAll<F> {
    let n = futures.len();
    JoinAll {
        futures: futures.into_iter().map(|f| Some(Box::pin(f))).collect(),
        outputs: (0..n).map(|_| None).collect(),
    }
}

/// Future returned by [`join_all`].
pub struct JoinAll<F: Future> {
    futures: Vec<Option<Pin<Box<F>>>>,
    outputs: Vec<Option<F::Output>>,
}

impl<F: Future> Future for JoinAll<F> {
    type Output = Vec<F::Output>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = unsafe { self.get_unchecked_mut() };
        let mut all_done = true;
        for (slot, out) in this.futures.iter_mut().zip(this.outputs.iter_mut()) {
            if let Some(fut) = slot {
                match fut.as_mut().poll(cx) {
                    Poll::Ready(v) => {
                        *out = Some(v);
                        *slot = None;
                    }
                    Poll::Pending => all_done = false,
                }
            }
        }
        if all_done {
            Poll::Ready(this.outputs.iter_mut().map(|o| o.take().unwrap()).collect())
        } else {
            Poll::Pending
        }
    }
}

/// Run two futures concurrently, returning both outputs.
pub async fn join2<A: Future, B: Future>(a: A, b: B) -> (A::Output, B::Output) {
    let mut a = Box::pin(a);
    let mut b = Box::pin(b);
    let mut ra = None;
    let mut rb = None;
    std::future::poll_fn(|cx| {
        if ra.is_none() {
            if let Poll::Ready(v) = a.as_mut().poll(cx) {
                ra = Some(v);
            }
        }
        if rb.is_none() {
            if let Poll::Ready(v) = b.as_mut().poll(cx) {
                rb = Some(v);
            }
        }
        if ra.is_some() && rb.is_some() {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    })
    .await;
    (ra.unwrap(), rb.unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn join_all_runs_concurrently() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let end = Rc::new(RefCell::new(0u64));
        {
            let end = Rc::clone(&end);
            let h2 = h.clone();
            sim.spawn("t", async move {
                let futs: Vec<_> = (1..=3u64)
                    .map(|i| {
                        let h = h2.clone();
                        async move {
                            h.delay(SimDuration::from_micros(i * 10)).await;
                            i
                        }
                    })
                    .collect();
                let out = join_all(futs).await;
                assert_eq!(out, vec![1, 2, 3]);
                *end.borrow_mut() = h2.now().as_nanos();
            });
        }
        sim.run();
        // Concurrent: total time = max (30us), not sum (60us).
        assert_eq!(*end.borrow(), 30_000);
    }

    #[test]
    fn join_all_empty() {
        let mut sim = Sim::new();
        let done = Rc::new(RefCell::new(false));
        let done2 = Rc::clone(&done);
        sim.spawn("t", async move {
            let out: Vec<u8> = join_all(Vec::<std::future::Ready<u8>>::new()).await;
            assert!(out.is_empty());
            *done2.borrow_mut() = true;
        });
        sim.run();
        assert!(*done.borrow());
    }

    #[test]
    fn join2_returns_both() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let got = Rc::new(RefCell::new((0u32, 0u64)));
        {
            let got = Rc::clone(&got);
            sim.spawn("t", async move {
                let a = {
                    let h = h.clone();
                    async move {
                        h.delay(SimDuration::from_micros(5)).await;
                        7u32
                    }
                };
                let b = {
                    let h = h.clone();
                    async move {
                        h.delay(SimDuration::from_micros(3)).await;
                        9u64
                    }
                };
                *got.borrow_mut() = join2(a, b).await;
            });
        }
        let out = sim.run();
        assert_eq!(*got.borrow(), (7, 9));
        assert_eq!(out.time.as_nanos(), 5_000);
    }

    #[test]
    fn join_all_borrowing_futures() {
        // The point of join_all over spawn: futures may borrow locals.
        let mut sim = Sim::new();
        let h = sim.handle();
        sim.spawn("t", async move {
            let data = vec![1u64, 2, 3];
            let futs: Vec<_> = data
                .iter()
                .map(|&x| {
                    let h = h.clone();
                    async move {
                        h.delay(SimDuration::from_nanos(x)).await;
                        x * 2
                    }
                })
                .collect();
            let out = join_all(futs).await;
            assert_eq!(out, vec![2, 4, 6]);
            drop(data);
        });
        let out = sim.run();
        assert_eq!(out.pending_tasks, 0);
    }
}
