//! Lightweight measurement helpers used by benchmarks and experiments.

use crate::time::{SimDuration, SimTime};

/// Online mean/min/max/stddev accumulator (Welford).
#[derive(Clone, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0 if fewer than two observations).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Minimum observation (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum observation (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

/// A `(time, value)` series, e.g. queue depth or utilization over time.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Append a sample; times must be non-decreasing.
    pub fn record(&mut self, t: SimTime, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "TimeSeries: time went backwards");
        }
        self.points.push((t, v));
    }

    /// All samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Time-weighted average over the recorded span (step interpolation).
    pub fn time_weighted_mean(&self) -> f64 {
        if self.points.len() < 2 {
            return self.points.first().map_or(0.0, |&(_, v)| v);
        }
        let mut acc = 0.0;
        let mut dur = 0.0;
        for w in self.points.windows(2) {
            let dt = w[1].0.since(w[0].0).as_secs_f64();
            acc += w[0].1 * dt;
            dur += dt;
        }
        if dur == 0.0 {
            self.points[0].1
        } else {
            acc / dur
        }
    }
}

/// A stopwatch over virtual time.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: SimTime,
}

impl Stopwatch {
    /// Start at `now`.
    pub fn start_at(now: SimTime) -> Self {
        Stopwatch { start: now }
    }

    /// Elapsed since start.
    pub fn elapsed(&self, now: SimTime) -> SimDuration {
        now.since(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.138_089_935_299_395).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn time_weighted_mean_steps() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_nanos(0), 1.0);
        ts.record(SimTime::from_nanos(10), 3.0);
        ts.record(SimTime::from_nanos(30), 0.0);
        // 1.0 for 10ns, 3.0 for 20ns => (10 + 60)/30
        assert!((ts.time_weighted_mean() - 70.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn time_series_rejects_backwards() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_nanos(10), 1.0);
        ts.record(SimTime::from_nanos(5), 1.0);
    }

    #[test]
    fn stopwatch_elapsed() {
        let sw = Stopwatch::start_at(SimTime::from_nanos(100));
        assert_eq!(
            sw.elapsed(SimTime::from_nanos(250)),
            SimDuration::from_nanos(150)
        );
    }
}
