//! Deterministic random number generation.
//!
//! Every stochastic component owns its own [`SimRng`], derived from a master
//! seed plus a stream label, so adding a new consumer never perturbs the
//! random sequence of existing components (seed hygiene).

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A seeded, splittable RNG for simulation components.
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// From a master seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derive an independent stream from a label: same `(seed, label)` always
    /// produces the same stream; distinct labels produce unrelated streams.
    pub fn derive(seed: u64, label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::new(seed ^ h)
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        self.inner.gen_range(0..n)
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        let u1: f64 = self.uniform().max(1e-300);
        let u2: f64 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Exponential with the given rate (mean `1/rate`).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0);
        -self.uniform().max(1e-300).ln() / rate
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_differ() {
        let mut a = SimRng::derive(42, "fabric");
        let mut b = SimRng::derive(42, "gpu");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_is_reproducible() {
        let mut a = SimRng::derive(7, "x");
        let mut b = SimRng::derive(7, "x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SimRng::new(1);
        for _ in 0..1000 {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments_plausible() {
        let mut r = SimRng::new(3);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SimRng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn exponential_mean_plausible() {
        let mut r = SimRng::new(11);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
