//! FCFS resources: the queueing primitives that make contention and overlap
//! emerge from simulated protocol code instead of being hand-computed.
//!
//! * [`Resource`] — a counted-permit resource with strict FIFO granting
//!   (head-of-line blocking, like a hardware queue).
//! * [`Server`] — a single-capacity resource plus a helper that charges a
//!   service time while holding it (a CPU core, a DMA engine).
//! * [`Link`] — a point-to-point wire: messages serialize on the wire at a
//!   byte rate, then experience propagation latency *off* the wire, so
//!   back-to-back messages pipeline exactly as on a real network.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use parking_lot::Mutex;

use crate::executor::SimHandle;
use crate::time::{Bandwidth, SimDuration, SimTime};

struct Waiter {
    ticket: u64,
    need: usize,
    waker: Waker,
}

struct ResInner {
    permits: usize,
    capacity: usize,
    queue: VecDeque<Waiter>,
    next_ticket: u64,
    busy_since: Option<SimTime>,
    busy_accum: SimDuration,
    acquisitions: u64,
    created_at: SimTime,
}

impl ResInner {
    fn note_acquire(&mut self, now: SimTime) {
        self.acquisitions += 1;
        if self.permits < self.capacity && self.busy_since.is_none() {
            self.busy_since = Some(now);
        }
    }

    fn note_release(&mut self, now: SimTime) {
        if self.permits == self.capacity {
            if let Some(since) = self.busy_since.take() {
                self.busy_accum += now.since(since);
            }
        }
    }
}

/// Counted-permit resource with strict FCFS granting.
///
/// Waiters are served in arrival order even when a later, smaller request
/// could be satisfied first — this mirrors hardware queues (DMA engines,
/// NIC send queues) where reordering does not happen.
#[derive(Clone)]
pub struct Resource {
    inner: Arc<Mutex<ResInner>>,
    handle: SimHandle,
    name: &'static str,
}

impl Resource {
    /// A resource with `capacity` permits.
    pub fn new(handle: &SimHandle, name: &'static str, capacity: usize) -> Self {
        assert!(capacity > 0, "resource capacity must be positive");
        Resource {
            inner: Arc::new(Mutex::new(ResInner {
                permits: capacity,
                capacity,
                queue: VecDeque::new(),
                next_ticket: 0,
                busy_since: None,
                busy_accum: SimDuration::ZERO,
                acquisitions: 0,
                created_at: handle.now(),
            })),
            handle: handle.clone(),
            name,
        }
    }

    /// Acquire one permit.
    pub fn acquire(&self) -> Acquire {
        self.acquire_many(1)
    }

    /// Acquire `need` permits at once (granted atomically, FCFS).
    pub fn acquire_many(&self, need: usize) -> Acquire {
        let cap = self.inner.lock().capacity;
        assert!(
            need > 0 && need <= cap,
            "acquire_many({need}) on '{}' with capacity {cap}",
            self.name
        );
        Acquire {
            resource: self.clone(),
            need,
            ticket: None,
        }
    }

    /// Permits currently available.
    pub fn available(&self) -> usize {
        self.inner.lock().permits
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    /// Waiters queued right now.
    pub fn queue_len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Snapshot of usage statistics.
    pub fn stats(&self) -> ResourceStats {
        let inner = self.inner.lock();
        let now = self.handle.now();
        let mut busy = inner.busy_accum;
        if let Some(since) = inner.busy_since {
            busy += now.since(since);
        }
        let lifetime = now.saturating_since(inner.created_at);
        ResourceStats {
            name: self.name,
            acquisitions: inner.acquisitions,
            busy_time: busy,
            utilization: if lifetime.is_zero() {
                0.0
            } else {
                busy.as_secs_f64() / lifetime.as_secs_f64()
            },
        }
    }

    fn wake_head(inner: &mut ResInner) {
        if let Some(head) = inner.queue.front() {
            if inner.permits >= head.need {
                head.waker.wake_by_ref();
            }
        }
    }

    fn release(&self, need: usize) {
        let mut inner = self.inner.lock();
        inner.permits += need;
        debug_assert!(inner.permits <= inner.capacity, "double release");
        let now = self.handle.now();
        inner.note_release(now);
        Self::wake_head(&mut inner);
    }
}

/// Usage statistics of a [`Resource`].
#[derive(Clone, Copy, Debug)]
pub struct ResourceStats {
    /// Name given at construction.
    pub name: &'static str,
    /// Number of successful acquisitions so far.
    pub acquisitions: u64,
    /// Accumulated time with at least one permit held.
    pub busy_time: SimDuration,
    /// Fraction of lifetime with at least one permit held.
    pub utilization: f64,
}

/// Future returned by [`Resource::acquire`]; resolves to a [`ResourceGuard`].
pub struct Acquire {
    resource: Resource,
    need: usize,
    ticket: Option<u64>,
}

impl Future for Acquire {
    type Output = ResourceGuard;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        let mut inner = this.resource.inner.lock();
        match this.ticket {
            None => {
                // Fast path: nothing queued and permits available.
                if inner.queue.is_empty() && inner.permits >= this.need {
                    inner.permits -= this.need;
                    let now = this.resource.handle.now();
                    inner.note_acquire(now);
                    drop(inner);
                    return Poll::Ready(ResourceGuard {
                        resource: this.resource.clone(),
                        need: this.need,
                        released: false,
                    });
                }
                let ticket = inner.next_ticket;
                inner.next_ticket += 1;
                inner.queue.push_back(Waiter {
                    ticket,
                    need: this.need,
                    waker: cx.waker().clone(),
                });
                this.ticket = Some(ticket);
                Poll::Pending
            }
            Some(ticket) => {
                let is_head = inner.queue.front().map(|w| w.ticket) == Some(ticket);
                if is_head && inner.permits >= this.need {
                    inner.queue.pop_front();
                    inner.permits -= this.need;
                    let now = this.resource.handle.now();
                    inner.note_acquire(now);
                    // The next waiter may also be satisfiable.
                    Resource::wake_head(&mut inner);
                    drop(inner);
                    this.ticket = None;
                    Poll::Ready(ResourceGuard {
                        resource: this.resource.clone(),
                        need: this.need,
                        released: false,
                    })
                } else {
                    // Refresh the stored waker (wakers are one-shot).
                    if let Some(w) = inner.queue.iter_mut().find(|w| w.ticket == ticket) {
                        w.waker = cx.waker().clone();
                    }
                    Poll::Pending
                }
            }
        }
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if let Some(ticket) = self.ticket {
            // Cancelled while queued: remove our entry and let the next
            // waiter (if now at the head) have a chance.
            let mut inner = self.resource.inner.lock();
            if let Some(pos) = inner.queue.iter().position(|w| w.ticket == ticket) {
                inner.queue.remove(pos);
                if pos == 0 {
                    Resource::wake_head(&mut inner);
                }
            }
        }
    }
}

/// Holds permits; releases them (and wakes the queue head) on drop.
pub struct ResourceGuard {
    resource: Resource,
    need: usize,
    released: bool,
}

impl ResourceGuard {
    /// Release early (equivalent to dropping the guard).
    pub fn release(mut self) {
        self.do_release();
    }

    fn do_release(&mut self) {
        if !self.released {
            self.released = true;
            self.resource.release(self.need);
        }
    }
}

impl Drop for ResourceGuard {
    fn drop(&mut self) {
        self.do_release();
    }
}

/// Single FCFS server: acquire-exclusive, charge a service time, release.
///
/// Models a CPU core executing request handlers, a DMA engine, a disk, etc.
#[derive(Clone)]
pub struct Server {
    resource: Resource,
    handle: SimHandle,
}

impl Server {
    /// A single-capacity FCFS server.
    pub fn new(handle: &SimHandle, name: &'static str) -> Self {
        Server {
            resource: Resource::new(handle, name, 1),
            handle: handle.clone(),
        }
    }

    /// Queue for the server, hold it for `service`, then release.
    pub async fn serve(&self, service: SimDuration) {
        let guard = self.resource.acquire().await;
        self.handle.delay(service).await;
        drop(guard);
    }

    /// Acquire exclusively; caller charges arbitrary time while holding.
    pub async fn acquire(&self) -> ResourceGuard {
        self.resource.acquire().await
    }

    /// Usage statistics.
    pub fn stats(&self) -> ResourceStats {
        self.resource.stats()
    }
}

/// Parameters of a point-to-point link.
#[derive(Clone, Copy, Debug)]
pub struct LinkParams {
    /// Propagation + switching latency, charged after the wire is released.
    pub latency: SimDuration,
    /// Wire serialization rate.
    pub bandwidth: Bandwidth,
    /// Fixed per-message cost charged on the wire (header, MTU framing,
    /// send-side setup that serializes with the payload).
    pub per_message: SimDuration,
}

/// A point-to-point wire with FCFS serialization and pipelined latency.
///
/// `transmit(bytes)` completes when the last byte *arrives* at the far end:
/// the wire is held for `per_message + bytes/bandwidth`, then `latency`
/// elapses off the wire, so consecutive messages overlap their propagation.
#[derive(Clone)]
pub struct Link {
    wire: Resource,
    params: LinkParams,
    handle: SimHandle,
    bytes: Arc<Mutex<u64>>,
}

impl Link {
    /// A link with the given parameters.
    pub fn new(handle: &SimHandle, name: &'static str, params: LinkParams) -> Self {
        Link {
            wire: Resource::new(handle, name, 1),
            params,
            handle: handle.clone(),
            bytes: Arc::new(Mutex::new(0)),
        }
    }

    /// Link parameters.
    pub fn params(&self) -> LinkParams {
        self.params
    }

    /// Move `bytes` across the link; resolves at arrival of the last byte.
    pub async fn transmit(&self, bytes: u64) {
        let guard = self.wire.acquire().await;
        let serialize = self.params.per_message + self.params.bandwidth.transfer_time(bytes);
        self.handle.delay(serialize).await;
        drop(guard);
        *self.bytes.lock() += bytes;
        self.handle.delay(self.params.latency).await;
    }

    /// Total payload bytes that have crossed the link.
    pub fn bytes_transferred(&self) -> u64 {
        *self.bytes.lock()
    }

    /// Wire usage statistics.
    pub fn stats(&self) -> ResourceStats {
        self.wire.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn resource_serializes_two_holders() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let res = Resource::new(&h, "r", 1);
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..2 {
            let res = res.clone();
            let h = sim.handle();
            let log = Rc::clone(&log);
            sim.spawn("user", async move {
                let g = res.acquire().await;
                log.borrow_mut().push((i, "start", h.now().as_nanos()));
                h.delay(SimDuration::from_micros(10)).await;
                log.borrow_mut().push((i, "end", h.now().as_nanos()));
                drop(g);
            });
        }
        sim.run();
        let log = log.borrow();
        assert_eq!(log[0], (0, "start", 0));
        assert_eq!(log[1], (0, "end", 10_000));
        assert_eq!(log[2], (1, "start", 10_000));
        assert_eq!(log[3], (1, "end", 20_000));
    }

    #[test]
    fn resource_fcfs_ordering() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let res = Resource::new(&h, "r", 1);
        let order = Rc::new(RefCell::new(Vec::new()));
        // First holder keeps it busy; then 3 waiters arrive in known order.
        {
            let res = res.clone();
            let h = sim.handle();
            sim.spawn("holder", async move {
                let g = res.acquire().await;
                h.delay(SimDuration::from_micros(5)).await;
                drop(g);
            });
        }
        for i in 0..3u32 {
            let res = res.clone();
            let h = sim.handle();
            let order = Rc::clone(&order);
            sim.spawn("waiter", async move {
                // Stagger arrivals by 1ns to fix the order.
                h.delay(SimDuration::from_nanos(1 + i as u64)).await;
                let _g = res.acquire().await;
                order.borrow_mut().push(i);
                h.delay(SimDuration::from_micros(1)).await;
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2]);
    }

    #[test]
    fn acquire_many_blocks_until_enough() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let res = Resource::new(&h, "r", 4);
        let t_big = Rc::new(RefCell::new(0u64));
        {
            // Two holders of 2 permits each, releasing at 10us and 20us.
            for (i, us) in [(0u64, 10u64), (1, 20)] {
                let res = res.clone();
                let h = sim.handle();
                sim.spawn("small", async move {
                    let _ = i;
                    let g = res.acquire_many(2).await;
                    h.delay(SimDuration::from_micros(us)).await;
                    drop(g);
                });
            }
        }
        {
            let res = res.clone();
            let h = sim.handle();
            let t_big = Rc::clone(&t_big);
            sim.spawn("big", async move {
                h.delay(SimDuration::from_nanos(1)).await;
                let _g = res.acquire_many(4).await;
                *t_big.borrow_mut() = h.now().as_nanos();
            });
        }
        sim.run();
        // Needs all 4 permits: both holders must release (at 20us).
        assert_eq!(*t_big.borrow(), 20_000);
    }

    #[test]
    fn cancelled_waiter_unblocks_queue() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let res = Resource::new(&h, "r", 1);
        let got = Rc::new(RefCell::new(false));
        {
            let res = res.clone();
            let h = sim.handle();
            sim.spawn("holder", async move {
                let g = res.acquire().await;
                h.delay(SimDuration::from_micros(10)).await;
                drop(g);
            });
        }
        {
            // This waiter gives up (drops the acquire future) at 5us.
            let res = res.clone();
            let h = sim.handle();
            sim.spawn("quitter", async move {
                h.delay(SimDuration::from_nanos(1)).await;
                let acq = res.acquire();
                futures_select_timeout(&h, acq, SimDuration::from_micros(4)).await;
            });
        }
        {
            let res = res.clone();
            let h = sim.handle();
            let got = Rc::clone(&got);
            sim.spawn("patient", async move {
                h.delay(SimDuration::from_nanos(2)).await;
                let _g = res.acquire().await;
                *got.borrow_mut() = true;
            });
        }
        let out = sim.run();
        assert!(*got.borrow());
        assert_eq!(out.pending_tasks, 0);
    }

    /// Minimal "timeout" helper for the cancellation test: polls `fut` until
    /// the deadline, then drops it.
    async fn futures_select_timeout<F: Future + Unpin>(
        h: &SimHandle,
        mut fut: F,
        dur: SimDuration,
    ) {
        use std::future::poll_fn;
        let deadline = h.now() + dur;
        let mut timer = Box::pin(h.delay_until(deadline));
        poll_fn(|cx| {
            if Pin::new(&mut fut).poll(cx).is_ready() {
                return Poll::Ready(());
            }
            timer.as_mut().poll(cx)
        })
        .await;
    }

    #[test]
    fn link_pipelines_latency() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let link = Link::new(
            &h,
            "wire",
            LinkParams {
                latency: SimDuration::from_micros(100),
                bandwidth: Bandwidth::from_bytes_per_sec(1e9), // 1 GB/s => 1us/KB
                per_message: SimDuration::ZERO,
            },
        );
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..2 {
            let link = link.clone();
            let h = sim.handle();
            let arrivals = Rc::clone(&arrivals);
            sim.spawn("msg", async move {
                link.transmit(1000).await; // 1us serialization
                arrivals.borrow_mut().push(h.now().as_nanos());
            });
        }
        sim.run();
        // msg0: serialize [0,1us], arrive 101us. msg1: serialize [1,2us],
        // arrive 102us — latency overlapped, wire serialized.
        assert_eq!(*arrivals.borrow(), vec![101_000, 102_000]);
        assert_eq!(link.bytes_transferred(), 2000);
    }

    #[test]
    fn server_utilization_accounting() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let server = Server::new(&h, "cpu");
        {
            let server = server.clone();
            let h = sim.handle();
            sim.spawn("work", async move {
                server.serve(SimDuration::from_micros(30)).await;
                h.delay(SimDuration::from_micros(70)).await;
            });
        }
        sim.run();
        let stats = server.stats();
        assert_eq!(stats.acquisitions, 1);
        assert_eq!(stats.busy_time, SimDuration::from_micros(30));
        assert!((stats.utilization - 0.3).abs() < 1e-9);
    }
}
