//! Fault-injection plane: hooks the fabric and daemons consult so an
//! external chaos controller can perturb a run deterministically.
//!
//! The simulation crates stay free of injection *policy*: they only ask a
//! [`FaultHook`] what should happen at well-defined decision points (a
//! message about to cross a link, a daemon about to serve a request). The
//! `dacc-chaos` crate implements the hook from a seeded schedule; with no
//! hook installed every decision point takes the healthy path at the cost
//! of one branch.

use crate::time::{SimDuration, SimTime};

/// What the fabric should do with one message about to cross a link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkFault {
    /// Deliver normally.
    Deliver,
    /// Silently drop the message after it has occupied the wire (the
    /// sender still pays serialization; the receiver never sees it).
    Drop,
    /// Deliver, but with serialization time multiplied by this factor
    /// (> 1.0 models a degraded / congested link).
    Degrade(f64),
    /// Deliver on time, but with one payload bit flipped in flight. Timing
    /// is unaffected; receiver-side integrity checks (CRC trailers) are
    /// expected to catch the damage and trigger a retransmit.
    Corrupt,
}

/// Health of a simulated process (daemon, ARM) at a point in time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProcessFault {
    /// Process is running normally.
    Healthy,
    /// Process stalls for the given duration before continuing.
    Hang(SimDuration),
    /// Process dies: it stops serving and never responds again.
    Crash,
}

/// Decision points offered to a fault controller.
///
/// All methods default to the healthy path, so implementors override only
/// the surfaces they perturb. Implementations must be deterministic
/// functions of their own (seeded) state — the simulator calls them in a
/// fixed order, so a deterministic hook keeps whole runs reproducible.
pub trait FaultHook {
    /// Called once per message entering a link, before wire time is
    /// charged. `src`/`dst` are node ids; `payload_bytes` excludes headers.
    fn on_transmit(&self, src: usize, dst: usize, payload_bytes: u64, now: SimTime) -> LinkFault {
        let _ = (src, dst, payload_bytes, now);
        LinkFault::Deliver
    }

    /// Called once per link on a message's route (topology link ids),
    /// before any wire time, when a hook is installed. Lets a controller
    /// cut or slow one physical link — an edge-switch uplink, a dragonfly
    /// global link, one NIC direction — independently of the endpoint-pair
    /// filters of [`FaultHook::on_transmit`]. Implementations must not
    /// consume seeded randomness or event counters here unless they accept
    /// that richer topologies (more links per route) shift the sequence.
    fn on_link(&self, link: usize, now: SimTime) -> LinkFault {
        let _ = (link, now);
        LinkFault::Deliver
    }

    /// Called by a process identified by `process` (rank, by convention)
    /// at the top of each service iteration.
    fn process_state(&self, process: usize, now: SimTime) -> ProcessFault {
        let _ = (process, now);
        ProcessFault::Healthy
    }

    /// Called by a daemon's heartbeat agent before sending its `beat`-th
    /// liveness beat (0-based). Returning `false` suppresses the beat —
    /// the message is never handed to the fabric — modelling a wedged
    /// health agent or flaky device rather than a lossy link.
    fn heartbeat(&self, process: usize, beat: u64, now: SimTime) -> bool {
        let _ = (process, beat, now);
        true
    }
}

/// A hook that never injects anything; useful as an explicit default.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl FaultHook for NoFaults {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_healthy() {
        let h = NoFaults;
        assert_eq!(h.on_transmit(0, 1, 4096, SimTime::ZERO), LinkFault::Deliver);
        assert_eq!(h.process_state(3, SimTime::ZERO), ProcessFault::Healthy);
        assert!(h.heartbeat(3, 0, SimTime::ZERO));
    }

    #[test]
    fn overrides_take_effect() {
        struct DropAll;
        impl FaultHook for DropAll {
            fn on_transmit(&self, _: usize, _: usize, _: u64, _: SimTime) -> LinkFault {
                LinkFault::Drop
            }
        }
        assert_eq!(DropAll.on_transmit(0, 1, 1, SimTime::ZERO), LinkFault::Drop);
        // Unoverridden surface stays healthy.
        assert_eq!(
            DropAll.process_state(0, SimTime::ZERO),
            ProcessFault::Healthy
        );
    }
}
