//! Zero-latency message channels between simulation tasks.
//!
//! These model *synchronization*, not network transport: a send is visible to
//! the receiver at the same virtual time it was performed. Network delay is
//! modelled separately by link resources (see [`crate::resource::Link`]) —
//! keeping the two concerns apart lets protocol code charge exactly the costs
//! it intends to.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use parking_lot::Mutex;

/// Error returned by `recv` when the channel is empty and every sender has
/// been dropped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "channel closed: all senders dropped")
    }
}
impl std::error::Error for RecvError {}

/// Error returned by `send` when the receiver has been dropped.
#[derive(PartialEq, Eq, Debug)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "channel closed: receiver dropped")
    }
}
impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

struct ChanInner<T> {
    queue: VecDeque<T>,
    recv_wakers: VecDeque<Waker>,
    senders: usize,
    receiver_alive: bool,
}

impl<T> ChanInner<T> {
    fn wake_one(&mut self) {
        if let Some(w) = self.recv_wakers.pop_front() {
            w.wake();
        }
    }
    fn wake_all(&mut self) {
        for w in self.recv_wakers.drain(..) {
            w.wake();
        }
    }
}

/// Unbounded sending half; clonable.
pub struct Sender<T> {
    inner: Arc<Mutex<ChanInner<T>>>,
}

/// Receiving half. Single consumer.
pub struct Receiver<T> {
    inner: Arc<Mutex<ChanInner<T>>>,
}

/// Create an unbounded channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Mutex::new(ChanInner {
        queue: VecDeque::new(),
        recv_wakers: VecDeque::new(),
        senders: 1,
        receiver_alive: true,
    }));
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.lock().senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.inner.lock();
        inner.senders -= 1;
        if inner.senders == 0 {
            inner.wake_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.lock().receiver_alive = false;
    }
}

impl<T> Sender<T> {
    /// Enqueue a message; never blocks (unbounded).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.inner.lock();
        if !inner.receiver_alive {
            return Err(SendError(value));
        }
        inner.queue.push_back(value);
        inner.wake_one();
        Ok(())
    }

    /// True if the receiving half has been dropped.
    pub fn is_closed(&self) -> bool {
        !self.inner.lock().receiver_alive
    }
}

impl<T> Receiver<T> {
    /// Await the next message.
    pub fn recv(&self) -> RecvFuture<'_, T> {
        RecvFuture { receiver: self }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.lock().queue.pop_front()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().queue.is_empty()
    }
}

/// Future returned by [`Receiver::recv`].
pub struct RecvFuture<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Future for RecvFuture<'_, T> {
    type Output = Result<T, RecvError>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut inner = self.receiver.inner.lock();
        if let Some(v) = inner.queue.pop_front() {
            return Poll::Ready(Ok(v));
        }
        if inner.senders == 0 {
            return Poll::Ready(Err(RecvError));
        }
        inner.recv_wakers.push_back(cx.waker().clone());
        Poll::Pending
    }
}

/// One-shot channel: a single value, sent once.
pub mod oneshot {
    use super::*;

    struct OneInner<T> {
        value: Option<T>,
        waker: Option<Waker>,
        sender_alive: bool,
    }

    /// Sending half of a oneshot channel.
    pub struct OneSender<T> {
        inner: Arc<Mutex<OneInner<T>>>,
    }

    /// Receiving half of a oneshot channel; awaitable.
    pub struct OneReceiver<T> {
        inner: Arc<Mutex<OneInner<T>>>,
    }

    /// Create a oneshot channel.
    pub fn oneshot<T>() -> (OneSender<T>, OneReceiver<T>) {
        let inner = Arc::new(Mutex::new(OneInner {
            value: None,
            waker: None,
            sender_alive: true,
        }));
        (
            OneSender {
                inner: Arc::clone(&inner),
            },
            OneReceiver { inner },
        )
    }

    impl<T> OneSender<T> {
        /// Deliver the value, waking the receiver. Consumes the sender.
        pub fn send(self, value: T) {
            let mut inner = self.inner.lock();
            inner.value = Some(value);
            if let Some(w) = inner.waker.take() {
                w.wake();
            }
        }
    }

    impl<T> Drop for OneSender<T> {
        fn drop(&mut self) {
            let mut inner = self.inner.lock();
            inner.sender_alive = false;
            if let Some(w) = inner.waker.take() {
                w.wake();
            }
        }
    }

    impl<T> Future for OneReceiver<T> {
        type Output = Result<T, RecvError>;
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut inner = self.inner.lock();
            if let Some(v) = inner.value.take() {
                return Poll::Ready(Ok(v));
            }
            if !inner.sender_alive {
                return Poll::Ready(Err(RecvError));
            }
            inner.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn send_then_recv_same_time() {
        let mut sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        let got = Rc::new(RefCell::new(None));
        let got2 = Rc::clone(&got);
        let h = sim.handle();
        sim.spawn("recv", async move {
            let v = rx.recv().await.unwrap();
            *got2.borrow_mut() = Some((v, h.now()));
        });
        sim.spawn("send", async move {
            tx.send(7).unwrap();
        });
        sim.run();
        assert_eq!(*got.borrow(), Some((7, crate::time::SimTime::ZERO)));
    }

    #[test]
    fn recv_waits_for_delayed_send() {
        let mut sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        let h = sim.handle();
        let h2 = sim.handle();
        let got = Rc::new(RefCell::new(None));
        let got2 = Rc::clone(&got);
        sim.spawn("recv", async move {
            let v = rx.recv().await.unwrap();
            *got2.borrow_mut() = Some((v, h2.now()));
        });
        sim.spawn("send", async move {
            h.delay(SimDuration::from_micros(3)).await;
            tx.send(9).unwrap();
        });
        sim.run();
        let (v, t) = got.borrow().unwrap();
        assert_eq!(v, 9);
        assert_eq!(t.as_nanos(), 3_000);
    }

    #[test]
    fn messages_preserve_fifo_order() {
        let mut sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        let got = Rc::new(RefCell::new(Vec::new()));
        let got2 = Rc::clone(&got);
        sim.spawn("recv", async move {
            while let Ok(v) = rx.recv().await {
                got2.borrow_mut().push(v);
            }
        });
        sim.spawn("send", async move {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        sim.run();
        assert_eq!(*got.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_when_all_senders_dropped() {
        let mut sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        let tx2 = tx.clone();
        let err = Rc::new(RefCell::new(false));
        let err2 = Rc::clone(&err);
        sim.spawn("recv", async move {
            if rx.recv().await == Err(RecvError) {
                *err2.borrow_mut() = true;
            }
        });
        sim.spawn("droppers", async move {
            drop(tx);
            drop(tx2);
        });
        let out = sim.run();
        assert!(*err.borrow());
        assert_eq!(out.pending_tasks, 0);
    }

    #[test]
    fn send_errors_when_receiver_dropped() {
        let (tx, rx) = channel::<u32>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
        assert!(tx.is_closed());
    }

    #[test]
    fn oneshot_roundtrip() {
        let mut sim = Sim::new();
        let (tx, rx) = oneshot::oneshot::<&'static str>();
        let h = sim.handle();
        let got = Rc::new(RefCell::new(""));
        let got2 = Rc::clone(&got);
        sim.spawn("recv", async move {
            *got2.borrow_mut() = rx.await.unwrap();
        });
        sim.spawn("send", async move {
            h.delay(SimDuration::from_nanos(1)).await;
            tx.send("hello");
        });
        sim.run();
        assert_eq!(*got.borrow(), "hello");
    }

    #[test]
    fn oneshot_dropped_sender_errors() {
        let mut sim = Sim::new();
        let (tx, rx) = oneshot::oneshot::<u32>();
        let failed = Rc::new(RefCell::new(false));
        let failed2 = Rc::clone(&failed);
        sim.spawn("recv", async move {
            if rx.await.is_err() {
                *failed2.borrow_mut() = true;
            }
        });
        sim.spawn("drop", async move {
            drop(tx);
        });
        sim.run();
        assert!(*failed.borrow());
    }

    #[test]
    fn try_recv_and_len() {
        let (tx, rx) = channel::<u32>();
        assert!(rx.is_empty());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(rx.try_recv(), Some(2));
        assert_eq!(rx.try_recv(), None);
    }
}
