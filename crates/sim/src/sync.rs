//! Synchronization primitives for simulation tasks: barrier and event flag.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use parking_lot::Mutex;

struct BarrierInner {
    parties: usize,
    arrived: usize,
    generation: u64,
    wakers: Vec<Waker>,
}

/// Reusable barrier: `wait().await` blocks until `parties` tasks have called
/// it, then all proceed and the barrier resets for the next round.
#[derive(Clone)]
pub struct Barrier {
    inner: Arc<Mutex<BarrierInner>>,
}

impl Barrier {
    /// A barrier for `parties` tasks.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        Barrier {
            inner: Arc::new(Mutex::new(BarrierInner {
                parties,
                arrived: 0,
                generation: 0,
                wakers: Vec::new(),
            })),
        }
    }

    /// Arrive and wait for the rest of the group.
    pub fn wait(&self) -> BarrierWait {
        BarrierWait {
            barrier: self.clone(),
            arrived_gen: None,
        }
    }
}

/// Future returned by [`Barrier::wait`].
pub struct BarrierWait {
    barrier: Barrier,
    arrived_gen: Option<u64>,
}

impl Future for BarrierWait {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut inner = self.barrier.inner.lock();
        match self.arrived_gen {
            None => {
                inner.arrived += 1;
                let gen = inner.generation;
                if inner.arrived == inner.parties {
                    inner.arrived = 0;
                    inner.generation += 1;
                    for w in inner.wakers.drain(..) {
                        w.wake();
                    }
                    Poll::Ready(())
                } else {
                    inner.wakers.push(cx.waker().clone());
                    drop(inner);
                    self.arrived_gen = Some(gen);
                    Poll::Pending
                }
            }
            Some(gen) => {
                if inner.generation > gen {
                    Poll::Ready(())
                } else {
                    inner.wakers.push(cx.waker().clone());
                    Poll::Pending
                }
            }
        }
    }
}

struct FlagInner {
    set: bool,
    wakers: Vec<Waker>,
}

/// One-way latch: once set, every current and future waiter proceeds.
#[derive(Clone)]
pub struct EventFlag {
    inner: Arc<Mutex<FlagInner>>,
}

impl Default for EventFlag {
    fn default() -> Self {
        Self::new()
    }
}

impl EventFlag {
    /// An unset flag.
    pub fn new() -> Self {
        EventFlag {
            inner: Arc::new(Mutex::new(FlagInner {
                set: false,
                wakers: Vec::new(),
            })),
        }
    }

    /// Set the flag, waking all waiters. Idempotent.
    pub fn set(&self) {
        let mut inner = self.inner.lock();
        inner.set = true;
        for w in inner.wakers.drain(..) {
            w.wake();
        }
    }

    /// True if already set.
    pub fn is_set(&self) -> bool {
        self.inner.lock().set
    }

    /// Wait until the flag is set.
    pub fn wait(&self) -> FlagWait {
        FlagWait { flag: self.clone() }
    }
}

/// Future returned by [`EventFlag::wait`].
pub struct FlagWait {
    flag: EventFlag,
}

impl Future for FlagWait {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut inner = self.flag.inner.lock();
        if inner.set {
            Poll::Ready(())
        } else {
            inner.wakers.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn barrier_releases_all_at_last_arrival() {
        let mut sim = Sim::new();
        let barrier = Barrier::new(3);
        let times = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3u64 {
            let b = barrier.clone();
            let h = sim.handle();
            let times = Rc::clone(&times);
            sim.spawn("p", async move {
                h.delay(SimDuration::from_micros(i * 10)).await;
                b.wait().await;
                times.borrow_mut().push(h.now().as_nanos());
            });
        }
        sim.run();
        assert_eq!(*times.borrow(), vec![20_000, 20_000, 20_000]);
    }

    #[test]
    fn barrier_is_reusable() {
        let mut sim = Sim::new();
        let barrier = Barrier::new(2);
        let count = Rc::new(RefCell::new(0));
        for i in 0..2u64 {
            let b = barrier.clone();
            let h = sim.handle();
            let count = Rc::clone(&count);
            sim.spawn("p", async move {
                for round in 0..5u64 {
                    h.delay(SimDuration::from_micros(i * (round + 1))).await;
                    b.wait().await;
                    *count.borrow_mut() += 1;
                }
            });
        }
        let out = sim.run();
        assert_eq!(*count.borrow(), 10);
        assert_eq!(out.pending_tasks, 0);
    }

    #[test]
    fn event_flag_wakes_waiters_and_latches() {
        let mut sim = Sim::new();
        let flag = EventFlag::new();
        let times = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..2 {
            let f = flag.clone();
            let h = sim.handle();
            let times = Rc::clone(&times);
            sim.spawn("waiter", async move {
                f.wait().await;
                times.borrow_mut().push(h.now().as_nanos());
            });
        }
        {
            let f = flag.clone();
            let h = sim.handle();
            sim.spawn("setter", async move {
                h.delay(SimDuration::from_micros(7)).await;
                f.set();
            });
        }
        {
            // Late waiter: passes immediately at its own time.
            let f = flag.clone();
            let h = sim.handle();
            let times = Rc::clone(&times);
            sim.spawn("late", async move {
                h.delay(SimDuration::from_micros(20)).await;
                f.wait().await;
                times.borrow_mut().push(h.now().as_nanos());
            });
        }
        sim.run();
        assert_eq!(*times.borrow(), vec![7_000, 7_000, 20_000]);
        assert!(flag.is_set());
    }
}
